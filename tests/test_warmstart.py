"""Warm-start persistence: a respawned service reuses the bounds store.

The tentpole contract under test: a :class:`QueryService` given a
persistence knob (``bounds_store_path`` / ``bounds_store_name``) writes
its shared bounds store to a backing that survives the process, and the
*next* incarnation attaches to it through a content handshake — database
digest plus axis/config fingerprint — so the first post-restart batch is
served warm (hit rate >= 50%) and stays bit-identical to the serial path.

The hard-kill test is the honest version: a child process runs a real
service, reports its results, then SIGKILLs itself mid-flight — no
``close()``, no flush, workers orphaned.  The parent reaps the orphans,
respawns the service over the same file and gates the recovery contract.
Truncated and digest-mismatched backings must be detected through the
validation ladder, reported, and rebuilt from empty — never served.

Honours ``REPRO_TEST_START_METHOD`` like the chaos suite, so CI can
matrix fork/spawn over the same tests.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import ExecutorConfig, KNNQuery, QueryEngine, QueryService
from repro.engine.boundstore import bound_store_available
from repro.testing.faults import (
    assert_no_leaked_resources,
    kill_worker,
    snapshot_resources,
    truncate_store_file,
)

pytestmark = pytest.mark.skipif(
    not bound_store_available(), reason="shared bounds store unavailable here"
)

START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None


@pytest.fixture(autouse=True)
def no_leaked_resources():
    """Fail any test that orphans a worker or leaves a shm block linked."""
    before = snapshot_resources()
    yield
    assert_no_leaked_resources(before)


def _workload():
    """The deterministic database + batch both incarnations rebuild."""
    database = uniform_rectangle_database(num_objects=40, max_extent=0.05, seed=0)
    rng = np.random.default_rng(5)
    queries = [
        random_reference_object(extent=0.05, rng=rng, label=f"warm-{i}")
        for i in range(5)
    ]
    batch = [KNNQuery(q, k=3, tau=0.5, max_iterations=4) for q in queries]
    return database, batch


def _snapshot(results) -> list:
    snap = []
    for result in results:
        snap.append(
            [
                (m.index, m.probability_lower, m.probability_upper, m.decision,
                 m.iterations, m.sequence)
                for bucket in (result.matches, result.undecided, result.rejected)
                for m in bucket
            ]
            + [result.pruned]
        )
    return snap


def _json_snapshot(results) -> list:
    """A snapshot normalised through JSON, for cross-process comparison."""
    return json.loads(json.dumps(_snapshot(results), default=float))


def _service(database, **kwargs):
    return QueryService(
        QueryEngine(database),
        ExecutorConfig(workers=2, start_method=START_METHOD),
        share_memory=False,
        **kwargs,
    )


def _serve_and_die(path: str, out_path: str) -> None:
    """Child: run one batch against a disk-backed store, then crash hard."""
    database, batch = _workload()
    service = _service(database, bounds_store_path=path)
    results = service.evaluate_many(batch)
    payload = {
        "snapshot": _json_snapshot(results),
        "workers": list(service.worker_pids),
    }
    with open(out_path + ".tmp", "w") as out:
        json.dump(payload, out)
        out.flush()
        os.fsync(out.fileno())
    os.rename(out_path + ".tmp", out_path)  # atomic: readable iff complete
    # no close(), no flush of the store: the crash leaves orphaned workers,
    # an in-use segment counter and (possibly) stale claims behind — the
    # page cache alone carries the published columns to the successor
    os.kill(os.getpid(), signal.SIGKILL)


def test_service_warm_starts_bit_identical_after_hard_kill(tmp_path):
    path = str(tmp_path / "bounds.store")
    out_path = str(tmp_path / "first-run.json")
    context = multiprocessing.get_context(START_METHOD)
    child = context.Process(target=_serve_and_die, args=(path, out_path))
    child.start()
    # wait on the (atomically renamed) result file, not on join(): the
    # orphaned pool workers inherit the child's sentinel pipe, so join()
    # cannot observe the SIGKILL until they are dead too
    deadline = time.monotonic() + 240.0
    while not os.path.exists(out_path) and time.monotonic() < deadline:
        assert child.exitcode is None or child.exitcode == -signal.SIGKILL
        time.sleep(0.05)
    with open(out_path) as recorded:
        payload = json.load(recorded)
    # the SIGKILL orphaned the child's pool workers: reap them
    for pid in payload["workers"]:
        kill_worker(pid)
    child.join(timeout=30)
    assert child.exitcode == -signal.SIGKILL
    database, batch = _workload()
    with _service(database, bounds_store_path=path) as service:
        assert service.store_warm_started
        stats = service.bound_store_stats()
        assert stats["warm_started"] is True
        assert stats["rejected_store"] is None
        results = service.evaluate_many(batch)
        # bit-identical across the crash boundary...
        assert _json_snapshot(results) == payload["snapshot"]
        # ...and served warm on the very first post-restart batch
        assert service.last_batch_report.shared_hit_rate >= 0.5
        # the crashed incarnation's stale claims were cleared on adoption
        assert stats["active_claims"] == 0


def test_orderly_restart_reuses_disk_backed_store(tmp_path):
    path = str(tmp_path / "bounds.store")
    database, batch = _workload()
    serial = _snapshot(QueryEngine(database).evaluate_many(batch))
    with _service(database, bounds_store_path=path) as service:
        assert not service.store_warm_started  # first incarnation is cold
        assert _snapshot(service.evaluate_many(batch)) == serial
        assert service.last_batch_report.shared_publishes > 0
    assert os.path.exists(path)  # close() keeps a persistent backing
    with _service(database, bounds_store_path=path) as service:
        assert service.store_warm_started
        assert _snapshot(service.evaluate_many(batch)) == serial
        assert service.last_batch_report.shared_hit_rate >= 0.5


def test_truncated_store_is_rejected_and_rebuilt(tmp_path):
    path = str(tmp_path / "bounds.store")
    database, batch = _workload()
    serial = _snapshot(QueryEngine(database).evaluate_many(batch))
    with _service(database, bounds_store_path=path) as service:
        assert _snapshot(service.evaluate_many(batch)) == serial
    assert truncate_store_file(path) == 64  # torn: not even a full header
    with _service(database, bounds_store_path=path) as service:
        assert not service.store_warm_started
        stats = service.bound_store_stats()
        assert stats["rejected_store"] == "truncated-header"
        # the torn backing was discarded, never served; the rebuilt store
        # works and results are unaffected
        assert _snapshot(service.evaluate_many(batch)) == serial
        assert service.bound_store_stats()["filled_slots"] > 0
    # the rebuilt backing is valid again for the incarnation after that
    with _service(database, bounds_store_path=path) as service:
        assert service.store_warm_started


def test_changed_database_digest_rejects_stale_store(tmp_path):
    path = str(tmp_path / "bounds.store")
    database, batch = _workload()
    with _service(database, bounds_store_path=path) as service:
        service.evaluate_many(batch)
    # same file, different data: the handshake must refuse the stale
    # columns (they were computed against another database's geometry)
    other = uniform_rectangle_database(num_objects=40, max_extent=0.05, seed=9)
    serial = _snapshot(QueryEngine(other).evaluate_many(batch))
    with _service(other, bounds_store_path=path) as service:
        assert not service.store_warm_started
        assert service.bound_store_stats()["rejected_store"] == "digest-mismatch"
        assert _snapshot(service.evaluate_many(batch)) == serial


def test_service_warm_starts_from_named_block():
    name = f"repro_ws_{os.getpid()}"
    database, batch = _workload()
    serial = _snapshot(QueryEngine(database).evaluate_many(batch))
    with _service(database, bounds_store_name=name) as service:
        assert not service.store_warm_started
        assert _snapshot(service.evaluate_many(batch)) == serial
    second = _service(database, bounds_store_name=name)
    try:
        assert second.store_warm_started
        assert _snapshot(second.evaluate_many(batch)) == serial
        assert second.last_batch_report.shared_hit_rate >= 0.5
    finally:
        second._bound_store.destroy()  # unlink: don't leak the named block
        second.close()
