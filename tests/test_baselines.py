"""Tests for the baselines: exact oracle, Monte-Carlo partner, MinMax pruning."""

import numpy as np
import pytest

from repro.baselines import (
    MonteCarloDominationCount,
    compare_pruning_power,
    exact_domination_count_pmf,
    exact_pdom,
    minmax_idca,
    monte_carlo_pdom,
)
from repro.core import IDCA, MaxIterations
from repro.datasets import (
    discrete_sample_database,
    random_reference_object,
    target_by_mindist_rank,
    uniform_rectangle_database,
)
from repro.geometry import Rectangle
from repro.uncertain import BoxUniformObject, DiscreteObject, UncertainDatabase


class TestExactPDom:
    def test_simple_two_point_objects(self):
        a = DiscreteObject([[1.0, 0.0]])
        b = DiscreteObject([[2.0, 0.0], [0.5, 0.0]], [0.5, 0.5])
        r = DiscreteObject([[0.0, 0.0]])
        # A (at distance 1) beats B only when B sits at distance 2
        assert exact_pdom(a, b, r) == pytest.approx(0.5)

    def test_certain_domination(self):
        a = DiscreteObject([[1.0, 0.0]])
        b = DiscreteObject([[5.0, 0.0]])
        r = DiscreteObject([[0.0, 0.0]])
        assert exact_pdom(a, b, r) == pytest.approx(1.0)
        assert exact_pdom(b, a, r) == pytest.approx(0.0)

    def test_complement_property(self):
        rng = np.random.default_rng(0)
        a = DiscreteObject(rng.uniform(0, 1, size=(5, 2)))
        b = DiscreteObject(rng.uniform(0, 1, size=(4, 2)))
        r = DiscreteObject(rng.uniform(0, 1, size=(3, 2)))
        # ties have probability ~0 for continuous random samples
        assert exact_pdom(a, b, r) + exact_pdom(b, a, r) == pytest.approx(1.0)

    def test_ties_count_as_not_dominating(self):
        a = DiscreteObject([[1.0, 0.0]])
        b = DiscreteObject([[-1.0, 0.0]])
        r = DiscreteObject([[0.0, 0.0]])
        assert exact_pdom(a, b, r) == 0.0
        assert exact_pdom(b, a, r) == 0.0

    def test_requires_discrete_objects(self):
        box = BoxUniformObject(Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]))
        point = DiscreteObject([[0.0, 0.0]])
        with pytest.raises(TypeError):
            exact_pdom(box, point, point)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(1)
        a = DiscreteObject(rng.uniform(0, 1, size=(4, 2)))
        b = DiscreteObject(rng.uniform(0, 1, size=(4, 2)))
        r = DiscreteObject(rng.uniform(0, 1, size=(4, 2)))
        estimate = monte_carlo_pdom(a, b, r, samples=40000, rng=rng)
        assert estimate == pytest.approx(exact_pdom(a, b, r), abs=0.02)


class TestMonteCarloPdomRng:
    """Regression: default calls must be independent, not seeded to 0."""

    @staticmethod
    def _objects():
        rng = np.random.default_rng(2)
        a = BoxUniformObject(Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]))
        b = BoxUniformObject(Rectangle.from_bounds([0.2, 0.2], [1.2, 1.2]))
        r = DiscreteObject(rng.uniform(0, 1, size=(4, 2)))
        return a, b, r

    def test_default_calls_draw_fresh_entropy(self):
        a, b, r = self._objects()
        # a fixed default seed made every estimate identical; with fresh OS
        # entropy, four 1000-sample estimates of a ~0.5 probability collide
        # with probability ~1e-6
        estimates = {monte_carlo_pdom(a, b, r, samples=1000) for _ in range(4)}
        assert len(estimates) > 1

    def test_seed_makes_estimates_reproducible(self):
        a, b, r = self._objects()
        first = monte_carlo_pdom(a, b, r, samples=500, seed=7)
        second = monte_carlo_pdom(a, b, r, samples=500, seed=7)
        assert first == second

    def test_explicit_rng_still_wins(self):
        a, b, r = self._objects()
        first = monte_carlo_pdom(a, b, r, samples=500, rng=np.random.default_rng(3))
        second = monte_carlo_pdom(a, b, r, samples=500, rng=np.random.default_rng(3))
        assert first == second

    def test_rng_and_seed_together_rejected(self):
        a, b, r = self._objects()
        with pytest.raises(ValueError, match="not both"):
            monte_carlo_pdom(a, b, r, rng=np.random.default_rng(0), seed=1)


class TestExactDominationCount:
    def test_pmf_is_a_distribution(self):
        database = discrete_sample_database(8, 4, seed=1)
        rng = np.random.default_rng(1)
        ref = DiscreteObject(rng.uniform(0, 1, size=(3, 2)))
        pmf = exact_domination_count_pmf(database, database[0], ref, exclude_indices=[0])
        assert pmf.shape == (8,)
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    def test_certain_configuration(self):
        database = UncertainDatabase(
            [DiscreteObject([[float(i + 1), 0.0]]) for i in range(4)]
        )
        ref = DiscreteObject([[0.0, 0.0]])
        pmf = exact_domination_count_pmf(database, database[2], ref, exclude_indices=[2])
        # objects at x=1 and x=2 dominate the target at x=3; object at x=4 does not
        np.testing.assert_allclose(pmf, [0.0, 0.0, 1.0, 0.0])

    def test_expected_count_matches_sum_of_pdoms(self):
        """E[DomCount] equals the sum of the individual domination probabilities."""
        database = discrete_sample_database(6, 3, seed=3)
        rng = np.random.default_rng(3)
        ref = DiscreteObject(rng.uniform(0, 1, size=(3, 2)))
        target = 1
        pmf = exact_domination_count_pmf(
            database, database[target], ref, exclude_indices=[target]
        )
        expected_from_pmf = float(np.arange(pmf.shape[0]) @ pmf)
        expected_from_pdoms = sum(
            exact_pdom(database[i], database[target], ref)
            for i in range(len(database))
            if i != target
        )
        assert expected_from_pmf == pytest.approx(expected_from_pdoms, abs=1e-9)

    def test_k_cap_truncation(self):
        database = discrete_sample_database(8, 3, seed=5)
        rng = np.random.default_rng(5)
        ref = DiscreteObject(rng.uniform(0, 1, size=(2, 2)))
        full = exact_domination_count_pmf(database, database[0], ref, exclude_indices=[0])
        capped = exact_domination_count_pmf(
            database, database[0], ref, exclude_indices=[0], k_cap=2
        )
        np.testing.assert_allclose(capped[:3], full[:3], atol=1e-12)
        assert capped[-1] == pytest.approx(full[3:].sum())

    def test_empty_candidate_set(self):
        database = UncertainDatabase([DiscreteObject([[0.0, 0.0]])])
        ref = DiscreteObject([[1.0, 1.0]])
        pmf = exact_domination_count_pmf(database, database[0], ref, exclude_indices=[0])
        np.testing.assert_allclose(pmf, [1.0])


class TestMonteCarloPartner:
    def test_pmf_close_to_exact_for_discrete_input(self):
        """On an already-discrete database MC with matching samples is exact."""
        database = discrete_sample_database(6, 4, seed=7)
        rng = np.random.default_rng(7)
        ref = DiscreteObject(rng.uniform(0, 1, size=(3, 2)))
        mc = MonteCarloDominationCount(database, samples_per_object=100, seed=0)
        result = mc.domination_count_pmf(0, ref)
        exact = exact_domination_count_pmf(database, database[0], ref, exclude_indices=[0])
        np.testing.assert_allclose(result.pmf, exact, atol=1e-9)

    def test_pmf_converges_for_continuous_input(self):
        database = uniform_rectangle_database(10, max_extent=0.4, seed=9)
        query = random_reference_object(extent=0.3, seed=10)
        target = 0
        coarse = MonteCarloDominationCount(database, samples_per_object=20, seed=1)
        fine = MonteCarloDominationCount(database, samples_per_object=200, seed=1)
        pmf_coarse = coarse.domination_count_pmf(target, query).pmf
        pmf_fine = fine.domination_count_pmf(target, query).pmf
        # IDCA bounds computed on the continuous objects must bracket the
        # high-sample MC estimate reasonably well
        idca = IDCA(database)
        run = idca.domination_count(target, query, stop=MaxIterations(6), max_iterations=6)
        assert np.all(run.bounds.lower <= pmf_fine + 0.05)
        assert np.all(run.bounds.upper >= pmf_fine - 0.05)
        assert pmf_coarse.shape == pmf_fine.shape

    def test_result_helpers(self):
        database = discrete_sample_database(5, 3, seed=11)
        rng = np.random.default_rng(11)
        ref = DiscreteObject(rng.uniform(0, 1, size=(2, 2)))
        mc = MonteCarloDominationCount(database, samples_per_object=50, seed=2)
        result = mc.domination_count_pmf(1, ref)
        assert 0.0 <= result.probability_less_than(2) <= 1.0
        assert result.probability_less_than(0) == 0.0
        assert 0.0 <= result.expected_count() <= len(database) - 1
        assert result.elapsed_seconds >= 0.0
        assert result.samples_per_object == 50

    def test_runtime_grows_with_sample_size(self):
        database = uniform_rectangle_database(20, max_extent=0.05, seed=13)
        query = random_reference_object(extent=0.05, seed=14)
        small = MonteCarloDominationCount(database, samples_per_object=10, seed=3)
        large = MonteCarloDominationCount(database, samples_per_object=80, seed=3)
        t_small = small.domination_count_pmf(0, query).elapsed_seconds
        t_large = large.domination_count_pmf(0, query).elapsed_seconds
        assert t_large > t_small

    def test_invalid_sample_count_raises(self):
        database = uniform_rectangle_database(5, seed=15)
        with pytest.raises(ValueError):
            MonteCarloDominationCount(database, samples_per_object=0)

    def test_discretised_database_cached(self):
        database = uniform_rectangle_database(5, seed=17)
        mc = MonteCarloDominationCount(database, samples_per_object=10, seed=4)
        assert mc.discretised_database is mc.discretised_database


class TestMinMaxBaseline:
    def test_optimal_prunes_at_least_as_much(self):
        database = uniform_rectangle_database(800, max_extent=0.01, seed=19)
        reference = random_reference_object(extent=0.01, seed=20)
        target = target_by_mindist_rank(database, reference, rank=10)
        comparison = compare_pruning_power(
            database, database[target], reference, exclude_indices=[target]
        )
        assert comparison.optimal_candidates <= comparison.minmax_candidates
        assert 0.0 <= comparison.improvement <= 1.0

    def test_minmax_idca_uses_minmax_criterion(self):
        database = uniform_rectangle_database(20, max_extent=0.02, seed=21)
        idca = minmax_idca(database)
        assert idca.criterion == "minmax"

    def test_improvement_zero_when_no_candidates(self):
        comparison = compare_pruning_power.__wrapped__ if hasattr(
            compare_pruning_power, "__wrapped__"
        ) else None
        # direct construction of the dataclass covers the zero-division guard
        from repro.baselines.minmax import PruningComparison

        assert PruningComparison(0, 0).improvement == 0.0
