"""Closed-loop soak test of the gateway (pytest ``slow`` marker).

Drives the gateway with ``repro.testing.load`` for ``REPRO_SOAK_SECONDS``
(default 3 s locally; the dedicated CI job sets 30) and asserts the
properties a long-lived service must keep:

* zero transport errors and zero connection leaks — every client
  connection the run opened is closed again, client- and server-side;
* zero stuck futures — the gateway's in-flight gauge and the service's
  pending counters return to zero once the load stops;
* monotone metrics counters — periodic ``/metrics`` samples taken *during*
  the run never go backwards;
* no leaked worker processes or shared-memory blocks (the fault harness's
  resource check, reused as a leak detector).
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request

import pytest

from repro.datasets import uniform_rectangle_database
from repro.engine import ExecutorConfig, QueryService
from repro.gateway import GatewayServer
from repro.testing.faults import assert_no_leaked_resources, snapshot_resources
from repro.testing.load import run_closed_loop

#: Counters sampled from ``GET /metrics`` that must never decrease.
MONOTONE_COUNTERS = [
    ("gateway", "requests_total"),
    ("gateway", "coalesce_hits"),
    ("gateway", "connections_total"),
    ("gateway", "engine", "batches_total"),
    ("gateway", "engine", "scheduler_steps"),
    ("gateway", "engine", "result_iterations"),
    ("gateway", "engine", "worker_respawns"),
    ("gateway", "engine", "chunk_retries"),
    ("service", "worker_respawns"),
]


def _dig(document, path):
    for key in path:
        document = document[key]
    return document


@pytest.mark.slow
def test_closed_loop_soak_no_leaks_no_stuck_futures():
    duration = float(os.environ.get("REPRO_SOAK_SECONDS", "3"))
    database = uniform_rectangle_database(num_objects=40, max_extent=0.05, seed=7)
    resources_before = snapshot_resources()

    def factory(index):
        # duplicate-heavy, mixed-kind stream: coalescing and both endpoints
        # get exercised, and the documents are a pure function of the index
        kind = index % 3
        if kind == 0:
            return "/v1/query", {
                "type": "knn",
                "query": index % 6,
                "k": 3,
                "tau": 0.5,
                "max_iterations": 2,
            }
        if kind == 1:
            return "/v1/query", {
                "type": "range",
                "query": index % 4,
                "epsilon": 0.3,
                "tau": 0.5,
                "max_depth": 3,
            }
        return "/v1/batch", {
            "queries": [
                {"type": "ranking", "query": index % 5, "max_iterations": 2},
                {"type": "knn", "query": index % 6, "k": 2, "tau": 0.5,
                 "max_iterations": 2},
            ]
        }

    with QueryService(database, ExecutorConfig(workers=2)) as service:
        with GatewayServer(service) as server:
            host, port = server.address
            samples = []
            stop_sampling = threading.Event()

            def sample_metrics():
                url = f"{server.url}/metrics"
                while not stop_sampling.is_set():
                    with urllib.request.urlopen(url, timeout=30) as response:
                        samples.append(json.loads(response.read()))
                    stop_sampling.wait(max(duration / 20.0, 0.05))

            sampler = threading.Thread(target=sample_metrics)
            sampler.start()
            try:
                report = run_closed_loop(
                    host,
                    port,
                    factory,
                    concurrency=8,
                    duration_seconds=duration,
                    timeout=60.0,
                )
            finally:
                stop_sampling.set()
                sampler.join(timeout=30)

            # the run did real work and nothing died below HTTP
            assert report.transport_errors == 0
            assert report.completed == report.offered > 0
            assert report.status_counts.get(200, 0) == report.completed

            # monotone counters: no sample ever goes backwards
            assert len(samples) >= 2
            for path in MONOTONE_COUNTERS:
                values = [_dig(sample, path) for sample in samples]
                assert values == sorted(values), (path, values)

            # no stuck futures: all in-flight gauges drain to zero
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                metrics = server.metrics()
                if (
                    metrics["queue_depth"] == 0
                    and metrics["connections_open"] == 0
                    and service.pending_requests == 0
                    and service.pending_batches == 0
                ):
                    break
                time.sleep(0.05)
            metrics = server.metrics()
            assert metrics["queue_depth"] == 0
            assert metrics["connections_open"] == 0
            assert service.pending_requests == 0
            assert service.pending_batches == 0

    # no leaked worker processes or shared-memory blocks
    assert_no_leaked_resources(resources_before)
