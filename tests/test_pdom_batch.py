"""Tests for the batched pair-bounds kernel layer.

Covers the broadcasting edge cases of ``domination_bulk`` /
``pdom_bounds_batch`` (zero-mass padding, degenerate rectangles, ``p = 1``
and ``p = inf``), the padded stacked representation served by
``DecompositionTree.partitions_arrays``, the batched UGF / domination-count
aggregation, and a property test asserting the batch results equal the
scalar reference loop.
"""

import math

import numpy as np
import pytest

from repro.core import (
    IDCA,
    MaxIterations,
    combine_weighted_bounds,
    combine_weighted_bounds_arrays,
    domination_count_bounds,
    domination_count_bounds_batch,
    pdom_bounds_batch,
    pdom_bounds_from_partitions,
    ugf_pmf_bounds_batch,
)
from repro.core.generating_functions import UncertainGeneratingFunction
from repro.core.kernels import _pdom_csr_numba, _pdom_csr_numpy, pdom_bounds_csr
from repro.datasets import (
    discrete_sample_database,
    random_reference_object,
    uniform_rectangle_database,
)
from repro.geometry import domination_bulk
from repro.uncertain import DecompositionTree, csr_partitions_batch


def _random_rects(rng, shape):
    """Random rectangles of the given leading shape, as (..., d, 2) arrays."""
    lows = rng.uniform(0.0, 1.0, size=shape + (2,))
    extents = rng.uniform(0.0, 0.3, size=shape + (2,))
    rects = np.empty(shape + (2, 2))
    rects[..., 0] = lows
    rects[..., 1] = lows + extents
    return rects


def _scalar_reference(parts, target_regions, reference_regions, p=2.0, criterion="optimal"):
    num_pairs = target_regions.shape[0] * reference_regions.shape[0]
    lower = np.empty((num_pairs, len(parts)))
    upper = np.empty((num_pairs, len(parts)))
    pair = 0
    for b_idx in range(target_regions.shape[0]):
        for r_idx in range(reference_regions.shape[0]):
            for c_idx, (regions, masses) in enumerate(parts):
                lower[pair, c_idx], upper[pair, c_idx] = pdom_bounds_from_partitions(
                    regions,
                    masses,
                    target_regions[b_idx],
                    reference_regions[r_idx],
                    p=p,
                    criterion=criterion,
                )
            pair += 1
    return lower, upper


class TestDominationBulkBroadcasting:
    def test_broadcast_reference_grid(self):
        """r_rect may be a full grid, not just a single rectangle."""
        rng = np.random.default_rng(0)
        a = _random_rects(rng, (1, 1, 3, 4))
        b = _random_rects(rng, (2, 1, 1, 1))
        r = _random_rects(rng, (1, 5, 1, 1))
        result = domination_bulk(a, b, r)
        assert result.shape == (2, 5, 3, 4)
        # every entry must match the scalar-reference call
        for bi in range(2):
            for ri in range(5):
                expected = domination_bulk(a[0, 0], b[bi, 0, 0, 0], r[0, ri, 0, 0])
                assert np.array_equal(result[bi, ri], expected)

    def test_degenerate_point_rectangles(self):
        """Zero-extent rectangles (points) are legal on every operand."""
        point_a = np.array([[0.1, 0.1], [0.2, 0.2]])
        point_b = np.array([[0.9, 0.9], [0.8, 0.8]])
        point_r = np.array([[0.1, 0.1], [0.2, 0.2]])
        assert bool(domination_bulk(point_a, point_b, point_r))
        assert not bool(domination_bulk(point_b, point_a, point_r))

    @pytest.mark.parametrize("criterion", ["optimal", "minmax"])
    def test_p1_matches_scalar(self, criterion):
        rng = np.random.default_rng(1)
        a = _random_rects(rng, (6,))
        b = _random_rects(rng, ())
        r = _random_rects(rng, ())
        bulk = domination_bulk(a, b, r, p=1.0, criterion=criterion)
        for i in range(6):
            assert bulk[i] == bool(domination_bulk(a[i], b, r, p=1.0, criterion=criterion))

    def test_p_inf_raises(self):
        rng = np.random.default_rng(2)
        a = _random_rects(rng, (2,))
        with pytest.raises(ValueError):
            domination_bulk(a, a[0], a[1], p=math.inf)


class TestPaddedPartitionsArrays:
    def test_padding_rows_have_zero_mass(self):
        database = uniform_rectangle_database(3, max_extent=0.1, seed=3)
        tree = DecompositionTree(database[0])
        regions, masses = tree.partitions_arrays(2)
        padded_regions, padded_masses = tree.partitions_arrays(2, pad_to=11)
        k = masses.shape[0]
        assert padded_regions.shape == (11, regions.shape[1], 2)
        assert np.array_equal(padded_regions[:k], regions)
        assert np.array_equal(padded_masses[:k], masses)
        assert np.all(padded_masses[k:] == 0.0)
        assert np.all(padded_regions[k:] == 0.0)

    def test_padded_variant_built_fresh_from_cached_base(self):
        """Pad widths vary per batch, so only the base arrays are cached."""
        database = uniform_rectangle_database(3, max_extent=0.1, seed=3)
        tree = DecompositionTree(database[0])
        base_first = tree.partitions_arrays(1)
        base_second = tree.partitions_arrays(1)
        assert base_first[0] is base_second[0] and base_first[1] is base_second[1]
        first = tree.partitions_arrays(1, pad_to=7)
        second = tree.partitions_arrays(1, pad_to=7)
        assert first[0] is not second[0]
        assert np.array_equal(first[0], second[0]) and np.array_equal(first[1], second[1])

    def test_pad_to_too_small_raises(self):
        database = uniform_rectangle_database(3, max_extent=0.1, seed=3)
        tree = DecompositionTree(database[0])
        with pytest.raises(ValueError):
            tree.partitions_arrays(3, pad_to=1)


class TestPdomBoundsBatch:
    def test_zero_mass_padding_cannot_change_bounds(self):
        """Padded and unpadded batches agree column-for-column exactly."""
        database = uniform_rectangle_database(6, max_extent=0.08, seed=4)
        trees = [DecompositionTree(obj) for obj in database]
        target = DecompositionTree(random_reference_object(extent=0.08, seed=5))
        target_regions, _ = target.partitions_arrays(1)
        reference_regions, _ = target.partitions_arrays(0)
        parts = [tree.partitions_arrays(3) for tree in trees]
        counts = np.array([m.shape[0] for _, m in parts])
        tight = int(counts.max())
        for pad_to in (tight, tight + 9):
            stacked_regions = np.stack(
                [t.partitions_arrays(3, pad_to=pad_to)[0] for t in trees]
            )
            stacked_masses = np.stack(
                [t.partitions_arrays(3, pad_to=pad_to)[1] for t in trees]
            )
            lower, upper = pdom_bounds_batch(
                stacked_regions,
                stacked_masses,
                target_regions,
                reference_regions,
                partition_counts=counts,
            )
            if pad_to == tight:
                base = (lower, upper)
        assert np.array_equal(base[0], lower)
        assert np.array_equal(base[1], upper)

    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0])
    @pytest.mark.parametrize("criterion", ["optimal", "minmax"])
    def test_property_batch_equals_scalar_loop(self, p, criterion):
        """The batched kernel reproduces the scalar triple loop."""
        database = uniform_rectangle_database(12, max_extent=0.06, seed=6)
        trees = [DecompositionTree(obj) for obj in database]
        target = DecompositionTree(random_reference_object(extent=0.06, seed=7))
        reference = DecompositionTree(random_reference_object(extent=0.06, seed=8))
        target_regions, _ = target.partitions_arrays(2)
        reference_regions, _ = reference.partitions_arrays(1)
        # mixed adaptive depths exercise the ragged padding
        depths = [1 + (i % 4) for i in range(len(trees))]
        parts = [tree.partitions_arrays(d) for tree, d in zip(trees, depths)]
        counts = np.array([m.shape[0] for _, m in parts])
        pad_to = int(counts.max())
        stacked_regions = np.stack(
            [t.partitions_arrays(d, pad_to=pad_to)[0] for t, d in zip(trees, depths)]
        )
        stacked_masses = np.stack(
            [t.partitions_arrays(d, pad_to=pad_to)[1] for t, d in zip(trees, depths)]
        )
        batch_lower, batch_upper = pdom_bounds_batch(
            stacked_regions,
            stacked_masses,
            target_regions,
            reference_regions,
            p=p,
            criterion=criterion,
            partition_counts=counts,
        )
        scalar_lower, scalar_upper = _scalar_reference(
            parts, target_regions, reference_regions, p=p, criterion=criterion
        )
        # summation re-association may differ by ULPs, nothing more
        np.testing.assert_allclose(batch_lower, scalar_lower, rtol=0, atol=1e-12)
        np.testing.assert_allclose(batch_upper, scalar_upper, rtol=0, atol=1e-12)
        assert np.all(batch_lower <= batch_upper)
        assert np.all(batch_lower >= 0.0) and np.all(batch_upper <= 1.0)

    def test_discrete_objects_supported(self):
        """Non-dyadic partition masses (discrete objects) stay consistent."""
        database = discrete_sample_database(
            num_objects=5, samples_per_object=7, max_extent=0.3, seed=9
        )
        trees = [DecompositionTree(obj) for obj in database]
        target = DecompositionTree(database[0])
        target_regions, _ = target.partitions_arrays(1)
        parts = [tree.partitions_arrays(2) for tree in trees]
        counts = np.array([m.shape[0] for _, m in parts])
        pad_to = int(counts.max())
        stacked_regions = np.stack(
            [t.partitions_arrays(2, pad_to=pad_to)[0] for t in trees]
        )
        stacked_masses = np.stack(
            [t.partitions_arrays(2, pad_to=pad_to)[1] for t in trees]
        )
        batch_lower, batch_upper = pdom_bounds_batch(
            stacked_regions,
            stacked_masses,
            target_regions,
            target_regions[:1],
            partition_counts=counts,
        )
        scalar_lower, scalar_upper = _scalar_reference(
            parts, target_regions, target_regions[:1]
        )
        np.testing.assert_allclose(batch_lower, scalar_lower, rtol=0, atol=1e-12)
        np.testing.assert_allclose(batch_upper, scalar_upper, rtol=0, atol=1e-12)

    def test_p_inf_raises(self):
        database = uniform_rectangle_database(2, max_extent=0.1, seed=10)
        tree = DecompositionTree(database[0])
        regions, masses = tree.partitions_arrays(1, pad_to=2)
        with pytest.raises(ValueError):
            pdom_bounds_batch(
                regions[None],
                masses[None],
                regions[:1],
                regions[:1],
                p=math.inf,
            )

    def test_empty_candidate_batch(self):
        lower, upper = pdom_bounds_batch(
            np.empty((0, 1, 2, 2)),
            np.empty((0, 1)),
            np.zeros((2, 2, 2)),
            np.zeros((3, 2, 2)),
        )
        assert lower.shape == (6, 0) and upper.shape == (6, 0)

    def test_bad_partition_counts_raise(self):
        regions = np.zeros((2, 3, 2, 2))
        masses = np.zeros((2, 3))
        grid = np.zeros((1, 2, 2))
        with pytest.raises(ValueError):
            pdom_bounds_batch(regions, masses, grid, grid, partition_counts=np.array([-1, 3]))
        with pytest.raises(ValueError):
            pdom_bounds_batch(regions, masses, grid, grid, partition_counts=np.array([4, 3]))

    def test_zero_partition_candidate_gets_scalar_bounds(self):
        """A massless candidate yields (0, 0) exactly like the scalar path."""
        rng = np.random.default_rng(20)
        regions = _random_rects(rng, (2, 3))
        masses = np.array([[0.25, 0.25, 0.5], [0.0, 0.0, 0.0]])
        grid = _random_rects(rng, (2,))
        lower, upper = pdom_bounds_batch(
            regions, masses, grid, grid[:1], partition_counts=np.array([3, 0])
        )
        assert np.all(lower[:, 1] == 0.0) and np.all(upper[:, 1] == 0.0)
        scalar = _scalar_reference(
            [(regions[0], masses[0]), (regions[1][:0], masses[1][:0])], grid, grid[:1]
        )
        np.testing.assert_allclose(lower, scalar[0], rtol=0, atol=1e-12)
        np.testing.assert_allclose(upper, scalar[1], rtol=0, atol=1e-12)

    def test_negligible_existence_probability_influence_object(self):
        """Regression: an influence object whose decomposition has no mass
        (existence probability below the partition mass epsilon) must not
        crash the kernel path — the scalar path completed such queries."""
        from repro.geometry import Interval, Rectangle
        from repro.uncertain import BoxUniformObject, UncertainDatabase

        def box(lo, hi, existence=1.0, label=""):
            return BoxUniformObject(
                Rectangle((Interval(lo[0], hi[0]), Interval(lo[1], hi[1]))),
                label=label,
                existence_probability=existence,
            )

        database = UncertainDatabase(
            [
                box((0.1, 0.1), (0.3, 0.3), label="near"),
                box((0.35, 0.35), (0.55, 0.55), existence=1e-16, label="ghost"),
                box((0.4, 0.4), (0.6, 0.6), label="mid"),
            ]
        )
        target = box((0.45, 0.45), (0.65, 0.65), label="target")
        reference = box((0.0, 0.0), (0.2, 0.2), label="reference")
        result = IDCA(database).domination_count(
            target, reference, stop=MaxIterations(3), max_iterations=3
        )
        assert result.num_iterations >= 1
        assert np.all(result.bounds.lower <= result.bounds.upper)


def _padded_reference(trees, depths, target_regions, reference_regions, p, criterion):
    """Bounds via the legacy padded-dense kernel for the same candidate set."""
    parts = [t.partitions_arrays(d) for t, d in zip(trees, depths)]
    counts = np.array([m.shape[0] for _, m in parts])
    pad_to = int(counts.max())
    stacked_regions = np.stack(
        [t.partitions_arrays(d, pad_to=pad_to)[0] for t, d in zip(trees, depths)]
    )
    stacked_masses = np.stack(
        [t.partitions_arrays(d, pad_to=pad_to)[1] for t, d in zip(trees, depths)]
    )
    return pdom_bounds_batch(
        stacked_regions,
        stacked_masses,
        target_regions,
        reference_regions,
        p=p,
        criterion=criterion,
        partition_counts=counts,
    )


class TestCSRKernelParity:
    """The four pair-bounds paths must agree: numpy-CSR ≡ numba-CSR bitwise
    always, and all of them ≡ the legacy padded kernel and the scalar
    reference bit-for-bit on dyadic (uniform-database) masses.

    ``_pdom_csr_numba`` is exercised directly: without numba installed its
    kernel body runs as plain Python, so this suite checks the *arithmetic*
    of the fused kernel on both CI legs (with and without numba), not just
    the dispatcher's fallback.
    """

    def _uniform_fixture(self, seed=21, num=10):
        database = uniform_rectangle_database(num, max_extent=0.06, seed=seed)
        trees = [DecompositionTree(obj) for obj in database]
        depths = [1 + (i % 4) for i in range(len(trees))]
        target = DecompositionTree(random_reference_object(extent=0.06, seed=seed + 1))
        reference = DecompositionTree(random_reference_object(extent=0.06, seed=seed + 2))
        target_regions, _ = target.partitions_arrays(2)
        reference_regions, _ = reference.partitions_arrays(1)
        return trees, depths, target_regions, reference_regions

    def _discrete_fixture(self, seed=23):
        database = discrete_sample_database(
            num_objects=6, samples_per_object=7, max_extent=0.3, seed=seed
        )
        trees = [DecompositionTree(obj) for obj in database]
        depths = [1 + (i % 4) for i in range(len(trees))]
        target = DecompositionTree(database[0])
        target_regions, _ = target.partitions_arrays(1)
        return trees, depths, target_regions, target_regions[:1]

    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0])
    @pytest.mark.parametrize("criterion", ["optimal", "minmax"])
    def test_csr_backends_bit_identical(self, p, criterion):
        """numpy-CSR and the fused numba kernel agree bit-for-bit, always —
        including on non-dyadic (discrete) masses, where the shared strict
        sequential fold is what makes the agreement exact."""
        for fixture in (self._uniform_fixture, self._discrete_fixture):
            trees, depths, target_regions, reference_regions = fixture()
            batch = csr_partitions_batch(trees, depths)
            lower_np, upper_np = _pdom_csr_numpy(
                batch.regions, batch.masses, batch.offsets,
                target_regions, reference_regions, p, criterion,
            )
            lower_nb, upper_nb = _pdom_csr_numba(
                batch.regions, batch.masses, batch.offsets,
                target_regions, reference_regions, p, criterion,
            )
            assert np.array_equal(lower_np, lower_nb)
            assert np.array_equal(upper_np, upper_nb)

    @pytest.mark.parametrize("p", [1.0, 2.0])
    @pytest.mark.parametrize("criterion", ["optimal", "minmax"])
    def test_all_four_paths_agree_on_uniform(self, p, criterion):
        """CSR (both backends) and the scalar loop all accumulate masses via
        the same strict left-to-right fold, so they agree bit-for-bit.  The
        legacy padded kernel goes through ``np.sum``'s pairwise blocking,
        which re-associates once a candidate holds eight or more partitions —
        it matches the fold only to within a few ulp."""
        trees, depths, target_regions, reference_regions = self._uniform_fixture()
        batch = csr_partitions_batch(trees, depths)
        lower_np, upper_np = _pdom_csr_numpy(
            batch.regions, batch.masses, batch.offsets,
            target_regions, reference_regions, p, criterion,
        )
        lower_nb, upper_nb = _pdom_csr_numba(
            batch.regions, batch.masses, batch.offsets,
            target_regions, reference_regions, p, criterion,
        )
        lower_pad, upper_pad = _padded_reference(
            trees, depths, target_regions, reference_regions, p, criterion
        )
        parts = [t.partitions_arrays(d) for t, d in zip(trees, depths)]
        lower_ref, upper_ref = _scalar_reference(
            parts, target_regions, reference_regions, p=p, criterion=criterion
        )
        for lower, upper in ((lower_nb, upper_nb), (lower_ref, upper_ref)):
            assert np.array_equal(lower_np, lower)
            assert np.array_equal(upper_np, upper)
        np.testing.assert_allclose(lower_pad, lower_np, rtol=0.0, atol=1e-12)
        np.testing.assert_allclose(upper_pad, upper_np, rtol=0.0, atol=1e-12)

    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0])
    @pytest.mark.parametrize("criterion", ["optimal", "minmax"])
    def test_csr_matches_scalar_on_discrete(self, p, criterion):
        """On non-dyadic masses the fold order differs from np.sum's pairwise
        blocking, so CSR vs padded/scalar is exact only to re-association."""
        trees, depths, target_regions, reference_regions = self._discrete_fixture()
        batch = csr_partitions_batch(trees, depths)
        lower, upper = pdom_bounds_csr(
            batch.regions, batch.masses, batch.offsets,
            target_regions, reference_regions, p=p, criterion=criterion,
            backend="numpy",
        )
        parts = [t.partitions_arrays(d) for t, d in zip(trees, depths)]
        lower_ref, upper_ref = _scalar_reference(
            parts, target_regions, reference_regions, p=p, criterion=criterion
        )
        np.testing.assert_allclose(lower, lower_ref, rtol=0, atol=1e-12)
        np.testing.assert_allclose(upper, upper_ref, rtol=0, atol=1e-12)
        lower_pad, upper_pad = _padded_reference(
            trees, depths, target_regions, reference_regions, p, criterion
        )
        np.testing.assert_allclose(lower, lower_pad, rtol=0, atol=1e-12)
        np.testing.assert_allclose(upper, upper_pad, rtol=0, atol=1e-12)

    def test_zero_partition_candidate_gets_scalar_bounds(self):
        """An empty CSR segment yields the (0, 0) bounds of the scalar path."""
        rng = np.random.default_rng(24)
        regions = _random_rects(rng, (3,))
        masses = np.array([0.25, 0.25, 0.5])
        offsets = np.array([0, 3, 3], dtype=np.int64)  # candidate 1 is empty
        grid = _random_rects(rng, (2,))
        for impl in (_pdom_csr_numpy, _pdom_csr_numba):
            lower, upper = impl(regions, masses, offsets, grid, grid[:1], 2.0, "optimal")
            assert np.all(lower[:, 1] == 0.0) and np.all(upper[:, 1] == 0.0)
            scalar = _scalar_reference(
                [(regions, masses), (regions[:0], masses[:0])], grid, grid[:1]
            )
            assert np.array_equal(lower, scalar[0])
            assert np.array_equal(upper, scalar[1])

    def test_empty_candidate_batch(self):
        batch = csr_partitions_batch([], [])
        grid_b = np.zeros((2, 2, 2))
        grid_r = np.zeros((3, 2, 2))
        lower, upper = pdom_bounds_csr(
            batch.regions, batch.masses, batch.offsets, grid_b, grid_r
        )
        assert lower.shape == (6, 0) and upper.shape == (6, 0)

    def test_invalid_p_raises(self):
        rng = np.random.default_rng(25)
        regions = _random_rects(rng, (2,))
        masses = np.array([0.5, 0.5])
        offsets = np.array([0, 2], dtype=np.int64)
        grid = _random_rects(rng, (1,))
        with pytest.raises(ValueError):
            pdom_bounds_csr(regions, masses, offsets, grid, grid, p=math.inf)
        with pytest.raises(ValueError):
            pdom_bounds_csr(regions, masses, offsets, grid, grid, p=0.5)
        with pytest.raises(ValueError):
            pdom_bounds_csr(regions, masses, offsets, grid, grid, criterion="bogus")

    def test_malformed_csr_raises(self):
        rng = np.random.default_rng(26)
        regions = _random_rects(rng, (3,))
        masses = np.array([0.25, 0.25, 0.5])
        grid = _random_rects(rng, (1,))
        with pytest.raises(ValueError):  # offsets must end at total_partitions
            pdom_bounds_csr(regions, masses, np.array([0, 2]), grid, grid)
        with pytest.raises(ValueError):  # non-monotone offsets
            pdom_bounds_csr(regions, masses, np.array([0, 2, 1, 3]), grid, grid)
        with pytest.raises(ValueError):  # masses/regions row mismatch
            pdom_bounds_csr(regions, masses[:2], np.array([0, 2]), grid, grid)


class TestGridValidation:
    """Satellite fix: transposed / malformed partition grids must raise
    instead of broadcasting into silently wrong bounds."""

    def _candidates(self):
        rng = np.random.default_rng(27)
        regions = _random_rects(rng, (2, 3))
        masses = np.full((2, 3), 1.0 / 3.0)
        return regions, masses

    def test_padded_kernel_rejects_transposed_grid(self):
        regions, masses = self._candidates()
        grid = _random_rects(rng := np.random.default_rng(28), (4,))
        transposed = np.transpose(grid, (1, 0, 2))  # (d, n, 2)
        with pytest.raises(ValueError):
            pdom_bounds_batch(regions, masses, transposed, grid)
        with pytest.raises(ValueError):
            pdom_bounds_batch(regions, masses, grid, transposed)

    def test_padded_kernel_rejects_wrong_ndim(self):
        regions, masses = self._candidates()
        grid = _random_rects(np.random.default_rng(29), (4,))
        with pytest.raises(ValueError):
            pdom_bounds_batch(regions, masses, grid[0], grid)  # (d, 2): ndim 2
        with pytest.raises(ValueError):
            pdom_bounds_batch(regions, masses, grid, grid[None])  # ndim 4

    def test_csr_kernel_rejects_transposed_grid(self):
        rng = np.random.default_rng(30)
        regions = _random_rects(rng, (3,))
        masses = np.array([0.25, 0.25, 0.5])
        offsets = np.array([0, 3], dtype=np.int64)
        grid = _random_rects(rng, (4,))
        transposed = np.transpose(grid, (1, 0, 2))
        with pytest.raises(ValueError):
            pdom_bounds_csr(regions, masses, offsets, transposed, grid)
        with pytest.raises(ValueError):
            pdom_bounds_csr(regions, masses, offsets, grid, transposed)

    def test_dimension_mismatch_against_candidates_raises(self):
        regions, masses = self._candidates()  # d = 2
        grid_3d = _random_rects(np.random.default_rng(31), (4,)).repeat(1, axis=0)
        grid_3d = np.concatenate([grid_3d, grid_3d[:, :1]], axis=1)  # (4, 3, 2)
        with pytest.raises(ValueError):
            pdom_bounds_batch(regions, masses, grid_3d, grid_3d)


class TestBatchedAggregation:
    def test_ugf_batch_matches_scalar_class(self):
        rng = np.random.default_rng(11)
        lower = rng.uniform(0.0, 0.6, size=(7, 9))
        upper = lower + rng.uniform(0.0, 0.4, size=(7, 9))
        for k_cap in (None, 0, 2, 20):
            batch_lower, batch_upper = ugf_pmf_bounds_batch(lower, upper, k_cap=k_cap)
            for i in range(lower.shape[0]):
                ref_lower, ref_upper = UncertainGeneratingFunction(
                    lower[i], upper[i], k_cap=k_cap
                ).pmf_bounds()
                assert np.array_equal(batch_lower[i], ref_lower)
                assert np.array_equal(batch_upper[i], ref_upper)

    def test_domination_count_bounds_batch_matches_scalar(self):
        rng = np.random.default_rng(12)
        lower = rng.uniform(0.0, 0.5, size=(5, 6))
        upper = lower + rng.uniform(0.0, 0.5, size=(5, 6))
        for complete, total, k_cap in ((0, None, None), (2, 12, None), (1, 10, 3)):
            batch_lower, batch_upper = domination_count_bounds_batch(
                lower, upper, complete_count=complete, total_objects=total, k_cap=k_cap
            )
            for i in range(lower.shape[0]):
                ref = domination_count_bounds(
                    lower[i], upper[i], complete_count=complete,
                    total_objects=total, k_cap=k_cap,
                )
                assert np.array_equal(batch_lower[i], ref.lower)
                assert np.array_equal(batch_upper[i], ref.upper)

    def test_combine_arrays_matches_tuple_api(self):
        rng = np.random.default_rng(13)
        lower = rng.uniform(0.0, 0.4, size=(4, 8))
        upper = np.minimum(lower + rng.uniform(0.0, 0.4, size=(4, 8)), 1.0)
        weights = np.array([0.25, 0.25, 0.3, 0.1])
        parts = [
            (float(w), domination_count_bounds(lower[i], upper[i]))
            for i, w in enumerate(weights)
        ]
        via_tuples = combine_weighted_bounds(parts)
        via_arrays = combine_weighted_bounds_arrays(
            weights,
            np.stack([b.lower for _, b in parts]),
            np.stack([b.upper for _, b in parts]),
        )
        assert np.array_equal(via_tuples.lower, via_arrays.lower)
        assert np.array_equal(via_tuples.upper, via_arrays.upper)

    def test_combine_arrays_validations(self):
        pmf = np.full((2, 3), 0.2)
        with pytest.raises(ValueError):
            combine_weighted_bounds_arrays(np.empty(0), np.empty((0, 3)), np.empty((0, 3)))
        with pytest.raises(ValueError):
            combine_weighted_bounds_arrays(np.array([-0.5, 0.5]), pmf, pmf)
        with pytest.raises(ValueError):
            combine_weighted_bounds_arrays(np.array([0.8, 0.8]), pmf, pmf)


class TestIterationStatsTiming:
    def test_cache_seconds_recorded_and_bounded(self):
        database = uniform_rectangle_database(40, max_extent=0.05, seed=14)
        reference = random_reference_object(extent=0.05, seed=15)
        shared_cache: dict = {}
        idca = IDCA(database, pair_bounds_cache=shared_cache)
        result = idca.domination_count(0, reference, stop=MaxIterations(3), max_iterations=3)
        for stat in result.iterations:
            assert stat.cache_seconds >= 0.0
            assert stat.cache_seconds <= stat.elapsed_seconds
        # a second identical run hits the shared cache on every iteration
        assert len(shared_cache) > 0
        again = idca.domination_count(0, reference, stop=MaxIterations(3), max_iterations=3)
        assert np.array_equal(again.bounds.lower, result.bounds.lower)
        assert np.array_equal(again.bounds.upper, result.bounds.upper)

    def test_uncached_runs_report_zero_cache_time(self):
        database = uniform_rectangle_database(20, max_extent=0.05, seed=16)
        reference = random_reference_object(extent=0.05, seed=17)
        result = IDCA(database).domination_count(
            0, reference, stop=MaxIterations(2), max_iterations=2
        )
        assert all(stat.cache_seconds == 0.0 for stat in result.iterations)
