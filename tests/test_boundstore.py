"""Cross-worker shared bounds store: protocol, tiering, dispatch, determinism.

The contract under test (``repro/engine/boundstore.py`` plus its consumers):

* the store round-trips bounds columns bit-exactly, rejects writes cleanly
  when a segment or the index fills up, and never returns a torn record to
  a concurrent reader;
* stable keys translate process-local memo keys into process-independent
  ones (database positions for members, content digests for ad-hoc query
  objects) so parent and workers derive the same key for the same column;
* :class:`~repro.engine.context.TieredPairBoundsCache` reads through to the
  store on local misses and publishes fresh columns back, with counters
  surfaced through ``RefinementContext.stats`` / ``IterationStats`` /
  ``BatchReport``;
* worker-affine dispatch pins affinity buckets of successive batches to
  stable lanes, and cost-adaptive chunk sizing derives a cap from observed
  per-request cost;
* end to end, repeated batches through a :class:`QueryService` stay
  bit-identical to the serial path at workers=1/2/4 — with the store, with
  it disabled, and with shared memory disabled entirely — while the store
  absorbs the duplicate work (hit rate >= 50% on batch 2+).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import struct
import threading

import numpy as np
import pytest

from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import (
    ExecutorConfig,
    KNNQuery,
    QueryEngine,
    QueryService,
    WorkerPool,
    adaptive_chunk_size,
    affine_partition,
    affinity_lane,
    partition_requests,
)
from repro.engine.boundstore import (
    BoundStoreClient,
    SharedBoundStore,
    bound_store_available,
    config_fingerprint,
    database_digest,
    encode_stable_key,
    stable_object_key,
)
from repro.engine.context import TieredPairBoundsCache

pytestmark = pytest.mark.skipif(
    not bound_store_available(), reason="shared bounds store unavailable here"
)


@pytest.fixture(scope="module")
def database():
    return uniform_rectangle_database(num_objects=60, max_extent=0.05, seed=0)


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(11)
    return [
        random_reference_object(extent=0.05, rng=rng, label=f"query-{i}")
        for i in range(6)
    ]


@pytest.fixture(scope="module")
def batch(queries):
    return [KNNQuery(query, k=3, tau=0.5, max_iterations=4) for query in queries]


def _snapshot(results) -> list:
    snap = []
    for result in results:
        snap.append(
            [
                (m.index, m.probability_lower, m.probability_upper, m.decision,
                 m.iterations, m.sequence)
                for bucket in (result.matches, result.undecided, result.rejected)
                for m in bucket
            ]
            + [result.pruned]
        )
    return snap


@pytest.fixture(scope="module")
def serial_snapshot(database, batch):
    return _snapshot(QueryEngine(database).evaluate_many(batch))


def _key(i: int) -> bytes:
    return encode_stable_key(("test-key", i))


# --------------------------------------------------------------------- #
# store protocol
# --------------------------------------------------------------------- #
def test_roundtrip_is_bit_exact():
    with SharedBoundStore(num_slots=256, num_segments=2) as store:
        writer = BoundStoreClient.from_handle(store.handle)
        lower = np.linspace(-1.0, 1.0, 37)
        upper = np.linspace(0.0, 2.0, 37)
        assert writer.get(_key(0)) is None
        assert writer.put(_key(0), lower, upper)
        reader = store.reader()
        got = reader.get(_key(0))
        assert got is not None
        np.testing.assert_array_equal(got[0], lower)
        np.testing.assert_array_equal(got[1], upper)
        # returned arrays are private copies, not views into the block
        got[0][:] = 99.0
        again = reader.get(_key(0))
        np.testing.assert_array_equal(again[0], lower)


def test_unknown_key_misses():
    with SharedBoundStore(num_slots=256, num_segments=1) as store:
        reader = store.reader()
        assert reader.get(_key(123)) is None
        assert reader.stats()["misses"] == 1


def test_duplicate_publish_is_detected():
    with SharedBoundStore(num_slots=256, num_segments=2) as store:
        first = BoundStoreClient.from_handle(store.handle)
        second = BoundStoreClient.from_handle(store.handle)
        column = np.ones(8)
        assert first.put(_key(1), column, column)
        assert not second.put(_key(1), column, column)
        assert second.stats()["duplicates"] == 1
        # both still read the one published record
        np.testing.assert_array_equal(second.get(_key(1))[0], column)


def test_full_segment_degrades_to_read_only():
    with SharedBoundStore(num_slots=256, num_segments=1, segment_bytes=4096) as store:
        writer = BoundStoreClient.from_handle(store.handle)
        big = np.zeros(200)
        published = sum(writer.put(_key(i), big, big) for i in range(10))
        assert 1 <= published < 10
        assert writer.stats()["rejected"] > 0
        # an oversized rejection must not waste the leftover space: a small
        # column that still fits is accepted afterwards
        assert writer.writable
        small = np.ones(4)
        assert writer.put(_key(1000), small, small)
        # genuinely exhausting the segment does stop publishing, reads go on
        tiny = np.ones(1)
        filled = 1000
        while writer.writable and filled < 2000:
            filled += 1
            writer.put(_key(filled), tiny, tiny)
        assert not writer.writable
        for i in range(published):
            got = writer.get(_key(i))
            assert got is not None
            np.testing.assert_array_equal(got[0], big)
        np.testing.assert_array_equal(writer.get(_key(1000))[0], small)


def test_full_index_rejects_without_error():
    # 64 slots with a 32-slot probe window fill quickly; everything after
    # that is rejected, and every accepted record stays readable.
    with SharedBoundStore(num_slots=64, num_segments=1) as store:
        writer = BoundStoreClient.from_handle(store.handle)
        column = np.ones(4)
        accepted = [i for i in range(200) if writer.put(_key(i), column, column)]
        assert len(accepted) < 200
        assert writer.stats()["rejected"] > 0
        for i in accepted:
            assert writer.get(_key(i)) is not None


def test_segment_claims_are_unique_and_exhaustible():
    with SharedBoundStore(num_slots=256, num_segments=2) as store:
        clients = [BoundStoreClient.from_handle(store.handle) for _ in range(3)]
        assert [c.segment for c in clients] == [0, 1, None]
        assert not clients[2].writable
        assert not clients[2].put(_key(9), np.ones(4), np.ones(4))


def test_reader_close_leaves_owner_mapping_intact():
    with SharedBoundStore(num_slots=256, num_segments=1) as store:
        writer = BoundStoreClient.from_handle(store.handle)
        assert writer.put(_key(5), np.ones(4), np.ones(4))
        borrowed = store.reader()
        assert borrowed.get(_key(5)) is not None
        borrowed.close()
        # the owner's mapping survives a borrowed client's close
        assert store.stats()["filled_slots"] == 1
        assert store.reader().get(_key(5)) is not None
        writer.close()


def test_store_close_is_idempotent_and_unlinks():
    store = SharedBoundStore(num_slots=256, num_segments=1)
    handle = store.handle
    store.close()
    store.close()
    assert not store.active
    with pytest.raises(Exception):
        BoundStoreClient.from_handle(handle)


def test_constructor_validation():
    with pytest.raises(ValueError):
        SharedBoundStore(num_slots=8)
    with pytest.raises(ValueError):
        SharedBoundStore(num_segments=0)
    with pytest.raises(ValueError):
        SharedBoundStore(num_segments=1000)
    with pytest.raises(ValueError):
        SharedBoundStore(segment_bytes=64)


def test_env_kill_switch(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_SHARED_BOUNDS", "1")
    assert not bound_store_available()
    with pytest.raises(RuntimeError):
        SharedBoundStore()
    monkeypatch.delenv("REPRO_DISABLE_SHARED_BOUNDS")
    monkeypatch.setenv("REPRO_DISABLE_SHARED_MEMORY", "1")
    assert not bound_store_available()


# --------------------------------------------------------------------- #
# stable keys
# --------------------------------------------------------------------- #
def test_database_members_key_by_position_and_generation(database):
    assert stable_object_key(database, database[7]) == ("db", 7, 7)
    assert stable_object_key(database, database[0]) == ("db", 0, 0)


def test_ad_hoc_objects_key_by_content_digest(database, queries):
    query = queries[0]
    kind, digest = stable_object_key(database, query)
    assert kind == "pickle"
    # the worker-side unpickled copy digests to the same value, so parent
    # and workers derive the same shared-store key for the same object;
    # digesting must not mutate the object (that would change its pickle
    # and break the cross-process agreement)
    copy = pickle.loads(pickle.dumps(query))
    assert "_repro_content_digest" not in vars(copy)
    assert stable_object_key(database, copy) == (kind, digest)
    # memoised: repeated calls agree without re-pickling
    assert stable_object_key(database, query) == (kind, digest)


def test_encoded_keys_are_deterministic_and_distinct():
    a = encode_stable_key(("pb1", "round_robin", (("db", 3), 2), (2.0, "optimal")))
    b = encode_stable_key(("pb1", "round_robin", (("db", 3), 2), (2.0, "optimal")))
    c = encode_stable_key(("pb1", "round_robin", (("db", 4), 2), (2.0, "optimal")))
    assert a == b and a != c


# --------------------------------------------------------------------- #
# concurrent access: publishers racing readers
# --------------------------------------------------------------------- #
def test_no_torn_reads_while_publishing():
    """Reader threads hammer the index while writers publish new columns.

    Every successful lookup must return exactly the column published for
    that key — a torn read would surface as a value mismatch (the payload
    is a deterministic function of the key) or as a validation crash.
    """
    num_keys = 150

    def expected(i: int) -> np.ndarray:
        return np.full(16, float(i) + 0.25)

    with SharedBoundStore(num_slots=1024, num_segments=3) as store:
        writers = [BoundStoreClient.from_handle(store.handle) for _ in range(2)]
        errors: list[str] = []
        stop = threading.Event()

        def read_loop():
            reader = store.reader()
            while not stop.is_set():
                for i in range(num_keys):
                    got = reader.get(_key(i))
                    if got is None:
                        continue
                    want = expected(i)
                    if not (
                        np.array_equal(got[0], want)
                        and np.array_equal(got[1], want + 1.0)
                    ):
                        errors.append(f"torn read for key {i}")
                        return

        threads = [threading.Thread(target=read_loop) for _ in range(4)]
        for thread in threads:
            thread.start()
        for i in range(num_keys):
            writers[i % 2].put(_key(i), expected(i), expected(i) + 1.0)
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, errors
        # after the dust settles every key resolves consistently
        reader = store.reader()
        served = 0
        for i in range(num_keys):
            got = reader.get(_key(i))
            if got is not None:
                served += 1
                np.testing.assert_array_equal(got[0], expected(i))
        assert served == sum(w.publishes for w in writers)


def test_concurrent_worker_publishes_stay_bit_identical(
    database, batch, serial_snapshot
):
    """Four workers publish into one store while serving one batch.

    The contiguous chunking spreads the six distinct query objects over all
    workers, so publishes race reads in real processes; results must still
    match the serial path bit for bit.
    """
    with QueryService(
        QueryEngine(database), ExecutorConfig(workers=4, chunking="contiguous")
    ) as service:
        assert service.shared_bounds
        for _ in range(3):
            results = service.evaluate_many(batch)
            assert _snapshot(results) == serial_snapshot


# --------------------------------------------------------------------- #
# the tiered cache
# --------------------------------------------------------------------- #
def test_second_context_is_served_from_the_store(database, batch, serial_snapshot):
    with SharedBoundStore() as store:
        first = QueryEngine(database)
        first.context.attach_shared_store(BoundStoreClient.from_handle(store.handle))
        assert _snapshot(first.evaluate_many(batch)) == serial_snapshot
        stats = first.context.stats()
        assert stats["shared_store"] and stats["shared_publishes"] > 0

        second = QueryEngine(database)
        second.context.attach_shared_store(BoundStoreClient.from_handle(store.handle))
        assert _snapshot(second.evaluate_many(batch)) == serial_snapshot
        stats = second.context.stats()
        assert stats["shared_hits"] > 0
        assert stats["shared_misses"] == 0 and stats["shared_publishes"] == 0


def test_tier_counters_reach_iteration_stats(database):
    with SharedBoundStore() as store:
        warm = QueryEngine(database)
        warm.context.attach_shared_store(BoundStoreClient.from_handle(store.handle))
        warm.domination_count(database[3], database[9], max_iterations=3)

        cold = QueryEngine(database)
        cold.context.attach_shared_store(BoundStoreClient.from_handle(store.handle))
        result = cold.domination_count(database[3], database[9], max_iterations=3)
        refine_stats = result.iterations[1:]
        assert sum(stat.shared_hits for stat in refine_stats) > 0
        assert all(stat.shared_publishes == 0 for stat in refine_stats)


def test_cache_without_store_behaves_like_before(database):
    engine = QueryEngine(database)
    cache = engine.context.pair_bounds_cache
    assert isinstance(cache, TieredPairBoundsCache)
    engine.knn(database[2], k=3, tau=0.5, max_iterations=3)
    stats = engine.context.stats()
    assert not stats["shared_store"]
    assert stats["shared_hits"] == stats["shared_misses"] == 0
    assert stats["pair_bounds_misses"] > 0


def test_full_store_falls_back_to_local_memoisation(database, batch, serial_snapshot):
    # a store too small for even one column: every publish is rejected,
    # every lookup misses, and results are untouched
    with SharedBoundStore(num_slots=64, num_segments=1, segment_bytes=4096) as store:
        engine = QueryEngine(database)
        engine.context.attach_shared_store(BoundStoreClient.from_handle(store.handle))
        assert _snapshot(engine.evaluate_many(batch)) == serial_snapshot
        stats = engine.context.stats()
        assert stats["shared_hits"] == 0
        assert stats["pair_bounds_misses"] > 0


# --------------------------------------------------------------------- #
# worker-affine dispatch and adaptive chunking
# --------------------------------------------------------------------- #
def test_affine_partition_covers_each_request_once(batch):
    chunks, lanes = affine_partition(batch, workers=3)
    assert len(chunks) == len(lanes)
    covered = sorted(index for chunk in chunks for index in chunk)
    assert covered == list(range(len(batch)))
    assert all(0 <= lane < 3 for lane in lanes)


def test_affine_lanes_are_stable_across_batches(batch):
    first = affine_partition(batch, workers=4)
    second = affine_partition(list(batch), workers=4)
    assert first == second
    # a shuffled follow-up batch still routes each request to the same lane
    reordered = list(reversed(batch))
    chunks, lanes = affine_partition(reordered, workers=4)
    lane_of = {}
    for chunk, lane in zip(chunks, lanes):
        for index in chunk:
            lane_of[id(reordered[index])] = lane
    for chunk, lane in zip(*first):
        for index in chunk:
            assert lane_of[id(batch[index])] == lane


def test_affinity_lane_matches_partition(batch):
    chunks, lanes = affine_partition(batch, workers=4)
    for chunk, lane in zip(chunks, lanes):
        for index in chunk:
            assert affinity_lane(batch[index].affinity_key(), 4) == lane


def test_affine_partition_validates_arguments(batch):
    with pytest.raises(ValueError):
        affine_partition(batch, workers=0)
    with pytest.raises(ValueError):
        affine_partition(batch, workers=2, chunk_size=0)
    assert affine_partition([], workers=2) == ([], [])


def test_worker_pool_pins_chunks_to_lanes(database, batch):
    engine = QueryEngine(database)
    with WorkerPool(engine, workers=2) as pool:
        pid_of_lane: dict[int, set] = {0: set(), 1: set()}
        for round_ in range(2):
            futures = [
                pool.submit_chunk(lane, [batch[lane]], lane=lane) for lane in (0, 1)
            ]
            for lane, future in zip((0, 1), futures):
                _, _, stats = future.result()
                pid_of_lane[lane].add(stats.pid)
        assert len(pid_of_lane[0]) == 1  # same worker served the lane twice
        assert len(pid_of_lane[1]) == 1
        assert pid_of_lane[0] != pid_of_lane[1]


def test_adaptive_chunk_size_resolution():
    assert adaptive_chunk_size(10, 4, None) is None
    assert adaptive_chunk_size(10, 4, 0.0) is None
    assert adaptive_chunk_size(0, 4, 0.1) is None
    # expensive requests split all the way down
    assert adaptive_chunk_size(10, 4, 10.0) == 1
    # cheap requests batch up, capped at an even split across workers
    assert adaptive_chunk_size(10, 4, 1e-6) == 3
    assert adaptive_chunk_size(100, 4, 0.01) == 20


def test_service_adapts_chunk_size_from_history(database, batch, serial_snapshot):
    config = ExecutorConfig(workers=2, chunk_size="adaptive", chunking="contiguous")
    with QueryService(QueryEngine(database), config) as service:
        assert service.adaptive_chunk_size(10) is None  # no history yet
        assert _snapshot(service.evaluate_many(batch)) == serial_snapshot
        assert service.last_batch_report.chunk_size is None
        assert service.observed_request_seconds is not None
        assert service.observed_request_seconds > 0
        resolved = service.adaptive_chunk_size(len(batch))
        assert resolved is None or resolved >= 1
        assert _snapshot(service.evaluate_many(batch)) == serial_snapshot
        # the report records what the sentinel resolved to this batch
        assert service.last_batch_report.chunk_size == resolved
        # under lane-pinned affinity dispatch the sentinel is a no-op:
        # splitting a pinned bucket cannot rebalance work across lanes
        assert _snapshot(
            service.evaluate_many(batch, chunking="affinity")
        ) == serial_snapshot
        assert service.last_batch_report.chunk_size is None


def test_bound_store_released_on_close(database, batch):
    service = QueryService(QueryEngine(database), ExecutorConfig(workers=1))
    assert service.shared_bounds
    service.evaluate_many(batch)
    service.close()
    # the closed service reports the store as gone instead of crashing
    assert not service.shared_bounds
    assert service.bound_store_stats() is None


def test_affine_dispatch_keeps_index_queries_on_warm_caches(database):
    """Database-index requests pin to one lane and hit worker-local caches.

    Unlike ad-hoc query objects (whose identity changes with every pickled
    copy), an index request resolves to the same object in the worker on
    every batch — so with affine dispatch batch 2 must be served entirely
    from the worker's local memo, never recomputed nor fetched remotely.
    """
    requests = [KNNQuery(7, k=3, tau=0.5, max_iterations=4)]
    with QueryService(
        QueryEngine(database), ExecutorConfig(workers=2, chunking="affinity")
    ) as service:
        first = _snapshot(service.evaluate_many(requests))
        report_one = service.last_batch_report
        assert report_one.pair_bounds_misses > 0
        second = _snapshot(service.evaluate_many(requests))
        report_two = service.last_batch_report
        assert second == first
        assert report_two.pair_bounds_misses == 0
        assert report_two.pair_bounds_hits > 0
        assert report_two.worker_pids == report_one.worker_pids


# --------------------------------------------------------------------- #
# batch report surface
# --------------------------------------------------------------------- #
def test_batch_report_shared_counters_and_str(database, batch, serial_snapshot):
    with QueryService(
        QueryEngine(database), ExecutorConfig(workers=2, chunking="contiguous")
    ) as service:
        assert _snapshot(service.evaluate_many(batch)) == serial_snapshot
        warmup = service.last_batch_report
        assert warmup.shared_publishes > 0
        assert _snapshot(service.evaluate_many(batch)) == serial_snapshot
        repeat = service.last_batch_report
        assert repeat.shared_hits > 0
        assert repeat.shared_hit_rate > 0.5
        summaries = repeat.worker_cache_summaries
        assert set(summaries) == set(repeat.worker_pids)
        assert sum(s["shared_hits"] for s in summaries.values()) == repeat.shared_hits
        text = str(repeat)
        assert "shared" in text and "local" in text and "workers=2" in text
        as_dict = repeat.to_dict()
        assert as_dict["shared_hits"] == repeat.shared_hits
        assert as_dict["shared_hit_rate"] == repeat.shared_hit_rate


# --------------------------------------------------------------------- #
# acceptance: repeated batches, workers=1/2/4, with and without the store
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_repeated_batches_hit_store_and_stay_identical(
    database, batch, serial_snapshot, workers
):
    with QueryService(
        QueryEngine(database), ExecutorConfig(workers=workers)
    ) as service:
        assert service.shared_bounds
        for round_ in range(3):
            assert _snapshot(service.evaluate_many(batch)) == serial_snapshot
            report = service.last_batch_report
            if round_ >= 1:
                # batch 2+: the duplicate work is served, not recomputed
                assert report.shared_hit_rate >= 0.5
        stats = service.bound_store_stats()
        assert stats["filled_slots"] > 0


# --------------------------------------------------------------------- #
# claim leases: in-flight computation markers
# --------------------------------------------------------------------- #
def _forge_claim(store, key: bytes, pid: int, age_seconds: float) -> None:
    """Plant a claim entry as if ``pid`` acquired ``key`` ``age`` ago."""
    import time

    from repro.engine.boundstore import (
        _CLAIM_BYTES,
        _HEADER_BYTES,
        _SLOT_BYTES,
        _fingerprint,
    )

    handle = store.handle
    fingerprint = _fingerprint(key)
    offset = (
        _HEADER_BYTES
        + handle.num_slots * _SLOT_BYTES
        + _CLAIM_BYTES * (fingerprint % handle.num_claims)
    )
    struct.pack_into(
        "<QIId", store._shm.buf, offset, fingerprint, pid, 0,
        time.monotonic() - age_seconds,
    )


def test_claims_disabled_store_fails_open():
    with SharedBoundStore(num_slots=256, num_segments=1, num_claims=0) as store:
        client = BoundStoreClient.from_handle(store.handle)
        assert not client.claims_enabled
        assert client.claim(_key(0)) == "acquired"
        assert not client.release(_key(0))


def test_claim_acquire_refresh_release_cycle():
    with SharedBoundStore(num_slots=256, num_segments=1, num_claims=64) as store:
        client = BoundStoreClient.from_handle(store.handle)
        assert client.claims_enabled
        assert client.claim(_key(1)) == "acquired"
        assert store.stats()["active_claims"] == 1
        # re-claiming our own key refreshes the lease, never conflicts
        assert client.claim(_key(1)) == "acquired"
        assert client.claim_acquires == 2 and client.claim_conflicts == 0
        assert client.release(_key(1))
        assert store.stats()["active_claims"] == 0
        # release is idempotent and safe for never-claimed keys
        assert not client.release(_key(1))
        assert not client.release(_key(2))


def test_claim_saturated_window_fails_open():
    with SharedBoundStore(num_slots=256, num_segments=1, num_claims=8) as store:
        client = BoundStoreClient.from_handle(store.handle)
        for i in range(8):
            assert client.claim(_key(i)) == "acquired"
        assert store.stats()["active_claims"] == 8
        # no free entry and no matching fingerprint left: fail open — the
        # publish-time duplicate check keeps correctness, this only risks
        # duplicate compute (exactly the pre-claims behaviour)
        assert client.claim(_key(99)) == "acquired"
        assert store.stats()["active_claims"] == 8


def test_claim_of_dead_holder_is_stolen():
    # a real (but already-exited) child pid: its claim is immediately
    # stealable, no lease wait needed
    child = multiprocessing.Process(target=int)
    child.start()
    dead_pid = child.pid
    child.join()
    with SharedBoundStore(num_slots=256, num_segments=1, num_claims=64) as store:
        client = BoundStoreClient.from_handle(store.handle)
        _forge_claim(store, _key(3), dead_pid, age_seconds=0.0)
        assert client.claim(_key(3)) == "stolen"
        assert client.claim_steals == 1
        # the steal rewrote the entry to us: releasable as our own
        assert client.release(_key(3))


def test_claim_of_expired_lease_is_stolen():
    # pid 1 is always alive, so only the lease age can justify the steal
    with SharedBoundStore(num_slots=256, num_segments=1, num_claims=64) as store:
        client = BoundStoreClient.from_handle(store.handle)
        _forge_claim(store, _key(4), pid=1, age_seconds=10 * client.lease_seconds)
        assert client.claim(_key(4)) == "stolen"
        # a *fresh* lease of the same live holder is respected
        _forge_claim(store, _key(5), pid=1, age_seconds=0.0)
        assert client.claim(_key(5)) == "held"
        assert client.claim_conflicts == 1


def test_wait_for_serves_published_column_or_times_out():
    with SharedBoundStore(num_slots=256, num_segments=1) as store:
        client = BoundStoreClient.from_handle(store.handle)
        assert client.wait_for(_key(6), budget=0.01) is None
        column = np.linspace(0.0, 1.0, 5)
        assert client.put(_key(6), column, column + 1.0)
        got = client.wait_for(_key(6), budget=0.01)
        assert got is not None
        np.testing.assert_array_equal(got[0], column)
        # polling must not inflate the shared-miss counter (only real
        # lookups on the cache read path count)
        assert client.misses == 0


# --------------------------------------------------------------------- #
# generation-based segment recycling
# --------------------------------------------------------------------- #
def test_reclaim_invalidates_published_columns():
    with SharedBoundStore(num_slots=256, num_segments=1) as store:
        writer = BoundStoreClient.from_handle(store.handle)
        column = np.arange(6.0)
        assert writer.put(_key(7), column, column)
        store.reclaim_segment(0)
        # the slot word still carries the old generation: the read-side
        # check rejects it as stale — a miss, never corruption
        assert writer.get(_key(7)) is None
        assert writer.corruptions == 0 and not writer.demoted
        assert store.stats()["segment_generations"] == [1]
        assert store.reclaim_count == 1
        # the recycled space is immediately publishable again
        assert writer.put(_key(8), column, column)
        np.testing.assert_array_equal(writer.get(_key(8))[0], column)


def test_full_latch_resets_on_reclaim():
    # the satellite regression: a client that latched read-only on a full
    # store must resume publishing once the owner reclaims a segment —
    # pre-fix the latch was permanent for the client's lifetime
    with SharedBoundStore(num_slots=64, num_segments=1, segment_bytes=4096) as store:
        writer = BoundStoreClient.from_handle(store.handle)
        tiny = np.ones(1)
        i = 0
        while writer.writable and i < 2000:
            writer.put(_key(i), tiny, tiny)
            i += 1
        assert not writer.writable
        assert writer.rejected > 0
        assert store.reclaim_round_robin() == 0
        assert writer.writable
        assert writer.put(_key(5000), tiny, tiny)
        np.testing.assert_array_equal(writer.get(_key(5000))[0], tiny)


def test_reclaim_round_robin_cycles_claimed_segments():
    with SharedBoundStore(num_slots=256, num_segments=3) as store:
        assert store.reclaim_round_robin() is None  # nothing claimed yet
        BoundStoreClient.from_handle(store.handle)
        BoundStoreClient.from_handle(store.handle)
        assert [store.reclaim_round_robin() for _ in range(3)] == [0, 1, 0]
        assert store.reclaim_count == 3


def test_reclaim_stale_retires_superseded_generations():
    def pair_key(i: int, gen: int) -> bytes:
        return encode_stable_key((
            "pb1", "round_robin",
            (("db", i, gen), 2), (("db", i + 1, gen), 2),
            (("pickle", "q"), 1), (2.0, "optimal"),
        ))

    def current(identity) -> bool:
        return identity[0] != "db" or identity[2] == 1

    column = np.ones(3)
    with SharedBoundStore(num_slots=256, num_segments=2) as store:
        stale_writer = BoundStoreClient.from_handle(store.handle)
        fresh_writer = BoundStoreClient.from_handle(store.handle)
        for i in range(4):
            assert stale_writer.put(pair_key(i, gen=0), column, column)
        for i in range(4):
            assert fresh_writer.put(pair_key(i, gen=1), column, column)
        # segment 0 is 100% superseded, segment 1 is 100% current
        assert store.reclaim_stale(current) == [0]
        assert stale_writer.get(pair_key(0, gen=0)) is None
        assert fresh_writer.get(pair_key(0, gen=1)) is not None
        # below the threshold nothing is reclaimed (3 of 4 still current)
        assert stale_writer.put(pair_key(10, gen=1), column, column)
        assert stale_writer.put(pair_key(11, gen=1), column, column)
        assert stale_writer.put(pair_key(12, gen=1), column, column)
        assert stale_writer.put(pair_key(13, gen=0), column, column)
        assert store.reclaim_stale(current) == []


# --------------------------------------------------------------------- #
# warm-start persistence: disk files and named blocks
# --------------------------------------------------------------------- #
DIGEST = b"digest-one"
CONFIG = b"config-one"


def _file_store(path, **overrides):
    kwargs = dict(
        num_slots=256, num_segments=2, path=path,
        content_digest=DIGEST, config_fingerprint=CONFIG,
    )
    kwargs.update(overrides)
    return SharedBoundStore(**kwargs)


def test_file_store_round_trips_across_restart(tmp_path):
    path = str(tmp_path / "bounds.store")
    lower = np.linspace(0.0, 1.0, 9)
    upper = lower + 0.5
    store = _file_store(path)
    try:
        assert not store.warm_started and store.rejected_store is None
        writer = BoundStoreClient.from_handle(store.handle)
        assert writer.put(_key(1), lower, upper)
        store.reclaim_segment(1)  # the reclaim counter must persist too
    finally:
        store.close()
    second = _file_store(path)
    try:
        assert second.warm_started and second.rejected_store is None
        got = second.reader().get(_key(1))
        assert got is not None
        np.testing.assert_array_equal(got[0], lower)
        np.testing.assert_array_equal(got[1], upper)
        assert second.reclaim_count == 1
        # a fresh incarnation re-claims segments from zero and appends past
        # the warm cursor: old and new columns coexist
        writer = BoundStoreClient.from_handle(second.handle)
        assert writer.put(_key(2), upper, lower)
        reader = second.reader()
        assert reader.get(_key(1)) is not None
        assert reader.get(_key(2)) is not None
        assert second.stats()["warm_started"] is True
    finally:
        second.destroy()
    assert not os.path.exists(path)


def test_warm_start_clears_stale_claims(tmp_path):
    path = str(tmp_path / "bounds.store")
    store = _file_store(path)
    BoundStoreClient.from_handle(store.handle).claim(_key(1))
    assert store.stats()["active_claims"] == 1
    store.close()
    # the previous incarnation died without releasing: the next one must
    # not inherit in-flight claims (their pids are meaningless now)
    second = _file_store(path)
    try:
        assert second.warm_started
        assert second.stats()["active_claims"] == 0
    finally:
        second.destroy()


def _truncate(path: str, size: int) -> None:
    with open(path, "r+b") as backing:
        backing.truncate(size)


def _scribble(path: str, offset: int, payload: bytes) -> None:
    with open(path, "r+b") as backing:
        backing.seek(offset)
        backing.write(payload)


def _bogus_cursor(path: str) -> None:
    from repro.engine.boundstore import _HEADER_BYTES, _SLOT_BYTES

    segments_offset = _HEADER_BYTES + 256 * _SLOT_BYTES  # num_claims=0
    _scribble(path, segments_offset, struct.pack("<Q", 7))


@pytest.mark.parametrize(
    "corrupt, reason",
    [
        (lambda path: _truncate(path, 0), "truncated-header"),
        (lambda path: _truncate(path, 32), "truncated-header"),
        (lambda path: _scribble(path, 0, b"JUNK"), "bad-magic"),
        (lambda path: _scribble(path, 4, struct.pack("<I", 99)), "version-mismatch"),
        (lambda path: _scribble(path, 33, b"\xff"), "corrupt-header"),
        (lambda path: _truncate(path, 4096), "truncated"),
        (_bogus_cursor, "corrupt-segment-cursor"),
    ],
    ids=[
        "empty", "truncated-header", "bad-magic", "version-mismatch",
        "corrupt-header", "truncated", "corrupt-segment-cursor",
    ],
)
def test_validation_ladder_rejects_and_rebuilds(tmp_path, corrupt, reason):
    path = str(tmp_path / "bounds.store")
    column = np.arange(4.0)
    store = _file_store(path, num_claims=0)
    try:
        assert BoundStoreClient.from_handle(store.handle).put(
            _key(1), column, column
        )
    finally:
        store.close()
    corrupt(path)
    reopened = _file_store(path, num_claims=0)
    try:
        # the damaged backing is detected, reported and never served
        assert not reopened.warm_started
        assert reopened.rejected_store == reason
        assert reopened.reader().get(_key(1)) is None
        # the rebuilt store is fully functional
        writer = BoundStoreClient.from_handle(reopened.handle)
        assert writer.put(_key(2), column, column)
        np.testing.assert_array_equal(reopened.reader().get(_key(2))[0], column)
    finally:
        reopened.destroy()


def test_content_handshake_rejects_foreign_stores(tmp_path):
    path = str(tmp_path / "bounds.store")
    _file_store(path).close()
    wrong_digest = _file_store(path, content_digest=b"digest-two")
    try:
        assert not wrong_digest.warm_started
        assert wrong_digest.rejected_store == "digest-mismatch"
    finally:
        wrong_digest.close()
    # the mismatch rebuilt the backing with the new digest; a matching
    # reopen now warm-starts, a mismatched config still rejects
    wrong_config = _file_store(
        path, content_digest=b"digest-two", config_fingerprint=b"config-two"
    )
    try:
        assert not wrong_config.warm_started
        assert wrong_config.rejected_store == "config-mismatch"
    finally:
        wrong_config.destroy()


def test_named_store_persists_until_destroyed():
    name = f"repro_bs_warmtest_{os.getpid()}"
    column = np.linspace(2.0, 3.0, 7)
    store = SharedBoundStore(
        num_slots=256, num_segments=1, name=name,
        content_digest=DIGEST, config_fingerprint=CONFIG,
    )
    try:
        assert store.persistent and not store.warm_started
        assert BoundStoreClient.from_handle(store.handle).put(
            _key(9), column, column
        )
    finally:
        store.close()  # detaches only: the named block stays linked
    second = SharedBoundStore(
        num_slots=256, num_segments=1, name=name,
        content_digest=DIGEST, config_fingerprint=CONFIG,
    )
    try:
        assert second.warm_started
        np.testing.assert_array_equal(second.reader().get(_key(9))[0], column)
    finally:
        second.destroy()  # unlinks: the next open starts cold
    third = SharedBoundStore(
        num_slots=256, num_segments=1, name=name,
        content_digest=DIGEST, config_fingerprint=CONFIG,
    )
    try:
        assert not third.warm_started and third.rejected_store is None
    finally:
        third.destroy()


def test_database_digest_tracks_content(database):
    same = uniform_rectangle_database(num_objects=60, max_extent=0.05, seed=0)
    other = uniform_rectangle_database(num_objects=60, max_extent=0.05, seed=1)
    assert database_digest(database) == database_digest(same)
    assert database_digest(database) != database_digest(other)
    assert len(database_digest(database)) == 16


def test_config_fingerprint_tracks_axis_policy():
    assert config_fingerprint("round_robin") == config_fingerprint("round_robin")
    assert config_fingerprint("round_robin") != config_fingerprint("optimal")
    assert config_fingerprint("round_robin") != config_fingerprint(
        "round_robin", key_schema="pb2"
    )


# --------------------------------------------------------------------- #
# saturation under a rotating query population (satellite)
# --------------------------------------------------------------------- #
def test_reclaim_restores_sharing_under_rotating_queries(database):
    """A rotating population saturates a tiny index; reclaim keeps it live.

    Without reclamation every client latches read-only once the 64-slot
    index fills, so late windows never see a shared hit again.  With the
    service's pressure-driven round-robin reclaim the store keeps retiring
    old columns and late windows share again — and both configurations stay
    bit-identical to the serial path throughout.
    """
    rng = np.random.default_rng(23)
    rotating = [
        random_reference_object(extent=0.05, rng=rng, label=f"rot-{i}")
        for i in range(9)
    ]
    windows = [
        [KNNQuery(q, k=3, tau=0.5, max_iterations=4) for q in rotating[i : i + 3]]
        for i in range(0, 9, 3)
    ]
    serial = [_snapshot(QueryEngine(database).evaluate_many(w)) for w in windows]
    options = {"num_slots": 64, "segment_bytes": 1 << 16}
    last_window_hits = {}
    reclaims = {}
    for reclaim in (True, False):
        with QueryService(
            QueryEngine(database),
            ExecutorConfig(workers=2, chunking="contiguous"),
            store_reclaim=reclaim,
            bounds_store_options=options,
        ) as service:
            hits = 0
            for window, expected in zip(windows, serial):
                for _ in range(3):
                    assert _snapshot(service.evaluate_many(window)) == expected
                    if window is windows[-1]:
                        hits += service.last_batch_report.shared_hits
            last_window_hits[reclaim] = hits
            reclaims[reclaim] = service.bound_store_stats()["reclaim_count"]
    assert reclaims[True] > 0
    assert last_window_hits[True] > 0
    assert reclaims[False] == 0
    assert last_window_hits[False] == 0


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_repeated_batches_identical_without_shared_memory(
    database, batch, serial_snapshot, workers, monkeypatch
):
    monkeypatch.setenv("REPRO_DISABLE_SHARED_MEMORY", "1")
    with QueryService(
        QueryEngine(database), ExecutorConfig(workers=workers)
    ) as service:
        assert not service.shared_bounds
        assert service.bound_store_stats() is None
        for _ in range(3):
            assert _snapshot(service.evaluate_many(batch)) == serial_snapshot
            assert service.last_batch_report.shared_hits == 0
