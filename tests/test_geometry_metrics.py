"""Unit tests for :mod:`repro.geometry.metrics`."""

import math

import numpy as np
import pytest

from repro.geometry import (
    Rectangle,
    lp_distance,
    max_dist,
    max_dist_arrays,
    max_dist_point,
    max_dist_point_arrays,
    min_dist,
    min_dist_arrays,
    min_dist_point,
    min_dist_point_arrays,
    rectangles_to_array,
)


class TestLpDistance:
    def test_euclidean(self):
        assert lp_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_manhattan(self):
        assert lp_distance([0.0, 0.0], [3.0, 4.0], p=1.0) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert lp_distance([0.0, 0.0], [3.0, 4.0], p=math.inf) == pytest.approx(4.0)

    def test_identical_points(self):
        assert lp_distance([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            lp_distance([0.0], [1.0], p=0.5)


class TestRectanglePointDistances:
    def setup_method(self):
        self.rect = Rectangle.from_bounds([0.0, 0.0], [1.0, 2.0])

    def test_min_dist_point_inside(self):
        assert min_dist_point(self.rect, [0.5, 1.0]) == 0.0

    def test_min_dist_point_outside(self):
        assert min_dist_point(self.rect, [2.0, 3.0]) == pytest.approx(math.sqrt(2.0))

    def test_max_dist_point_center(self):
        # farthest corner from the center is at distance sqrt(0.5^2 + 1^2)
        assert max_dist_point(self.rect, [0.5, 1.0]) == pytest.approx(math.sqrt(1.25))

    def test_max_dist_point_equals_farthest_corner(self):
        point = [3.0, -1.0]
        corner_dists = [lp_distance(point, c) for c in self.rect.corners()]
        assert max_dist_point(self.rect, point) == pytest.approx(max(corner_dists))

    def test_min_dist_point_equals_clamped_distance(self):
        point = [3.0, -1.0]
        clamped = self.rect.clamp_point(point)
        assert min_dist_point(self.rect, point) == pytest.approx(lp_distance(point, clamped))

    def test_chebyshev_variants(self):
        assert min_dist_point(self.rect, [2.0, 3.0], p=math.inf) == pytest.approx(1.0)
        assert max_dist_point(self.rect, [2.0, 3.0], p=math.inf) == pytest.approx(3.0)


class TestRectangleRectangleDistances:
    def test_min_dist_disjoint(self):
        a = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        b = Rectangle.from_bounds([2.0, 2.0], [3.0, 3.0])
        assert min_dist(a, b) == pytest.approx(math.sqrt(2.0))

    def test_min_dist_overlapping_is_zero(self):
        a = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        b = Rectangle.from_bounds([0.5, 0.5], [2.0, 2.0])
        assert min_dist(a, b) == 0.0

    def test_max_dist(self):
        a = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        b = Rectangle.from_bounds([2.0, 2.0], [3.0, 3.0])
        assert max_dist(a, b) == pytest.approx(math.sqrt(18.0))

    def test_symmetry(self):
        a = Rectangle.from_bounds([0.0, 0.0], [1.0, 3.0])
        b = Rectangle.from_bounds([-2.0, 1.0], [0.5, 2.0])
        assert min_dist(a, b) == pytest.approx(min_dist(b, a))
        assert max_dist(a, b) == pytest.approx(max_dist(b, a))

    def test_max_dist_at_least_min_dist(self):
        a = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        b = Rectangle.from_bounds([0.5, -3.0], [4.0, 0.2])
        assert max_dist(a, b) >= min_dist(a, b)

    def test_degenerate_rectangles_reduce_to_point_distance(self):
        a = Rectangle.from_point([0.0, 0.0])
        b = Rectangle.from_point([3.0, 4.0])
        assert min_dist(a, b) == pytest.approx(5.0)
        assert max_dist(a, b) == pytest.approx(5.0)


class TestVectorisedKernels:
    def setup_method(self):
        self.rects = [
            Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]),
            Rectangle.from_bounds([2.0, 2.0], [3.0, 4.0]),
            Rectangle.from_bounds([-1.0, -1.0], [0.0, 0.0]),
        ]
        self.arr = rectangles_to_array(self.rects)

    def test_point_kernels_match_scalar(self):
        point = np.array([0.5, 2.5])
        mins = min_dist_point_arrays(self.arr, point)
        maxs = max_dist_point_arrays(self.arr, point)
        for i, rect in enumerate(self.rects):
            assert mins[i] == pytest.approx(min_dist_point(rect, point))
            assert maxs[i] == pytest.approx(max_dist_point(rect, point))

    def test_rect_kernels_match_scalar(self):
        other = Rectangle.from_bounds([0.5, 0.5], [1.5, 3.0])
        mins = min_dist_arrays(self.arr, other.to_array())
        maxs = max_dist_arrays(self.arr, other.to_array())
        for i, rect in enumerate(self.rects):
            assert mins[i] == pytest.approx(min_dist(rect, other))
            assert maxs[i] == pytest.approx(max_dist(rect, other))

    def test_manhattan_kernels_match_scalar(self):
        other = Rectangle.from_bounds([0.5, 0.5], [1.5, 3.0])
        mins = min_dist_arrays(self.arr, other.to_array(), p=1.0)
        for i, rect in enumerate(self.rects):
            assert mins[i] == pytest.approx(min_dist(rect, other, p=1.0))

    def test_kernel_output_shapes(self):
        point = np.array([0.0, 0.0])
        assert min_dist_point_arrays(self.arr, point).shape == (3,)
        assert max_dist_point_arrays(self.arr, point).shape == (3,)
