"""Tests of the IDCA algorithm (Algorithm 1), including oracle comparisons."""

import numpy as np
import pytest

from repro.baselines import exact_domination_count_pmf
from repro.core import IDCA, MaxIterations, ThresholdDecision, UncertaintyBelow
from repro.datasets import (
    discrete_sample_database,
    random_reference_object,
    target_by_mindist_rank,
    uniform_rectangle_database,
)
from repro.geometry import Rectangle
from repro.uncertain import BoxUniformObject, DiscreteObject, UncertainDatabase


def _box(lo, hi, **kwargs):
    return BoxUniformObject(Rectangle.from_bounds(lo, hi), **kwargs)


class TestIDCAStructure:
    def setup_method(self):
        self.database = uniform_rectangle_database(80, max_extent=0.05, seed=2)
        self.reference = random_reference_object(extent=0.05, seed=3)
        self.target = target_by_mindist_rank(self.database, self.reference, rank=5)
        self.idca = IDCA(self.database)

    def test_result_partitions_database(self):
        result = self.idca.domination_count(
            self.target, self.reference, stop=MaxIterations(2), max_iterations=2
        )
        assert (
            result.complete_count + result.num_influence + result.pruned_count
            == len(self.database) - 1
        )

    def test_bounds_length_covers_all_counts(self):
        result = self.idca.domination_count(
            self.target, self.reference, stop=MaxIterations(1), max_iterations=1
        )
        assert len(result.bounds) == len(self.database)

    def test_iteration_zero_recorded(self):
        result = self.idca.domination_count(
            self.target, self.reference, stop=MaxIterations(0), max_iterations=0
        )
        assert len(result.iterations) == 1
        assert result.iterations[0].iteration == 0

    def test_uncertainty_monotonically_non_increasing(self):
        result = self.idca.domination_count(
            self.target, self.reference, stop=MaxIterations(5), max_iterations=5
        )
        uncertainties = [stat.uncertainty for stat in result.iterations]
        for earlier, later in zip(uncertainties, uncertainties[1:]):
            assert later <= earlier + 1e-9

    def test_total_probability_mass_consistency(self):
        result = self.idca.domination_count(
            self.target, self.reference, stop=MaxIterations(3), max_iterations=3
        )
        # the true PMF sums to one, so lower sums must stay below 1 and upper above
        assert result.bounds.lower.sum() <= 1.0 + 1e-9
        assert result.bounds.upper.sum() >= 1.0 - 1e-9

    def test_max_iterations_budget_respected(self):
        result = self.idca.domination_count(
            self.target, self.reference, max_iterations=3
        )
        assert result.num_iterations <= 3

    def test_negative_max_iterations_raises(self):
        with pytest.raises(ValueError):
            self.idca.domination_count(self.target, self.reference, max_iterations=-1)

    def test_index_out_of_range_raises(self):
        with pytest.raises(IndexError):
            self.idca.domination_count(len(self.database) + 1, self.reference)

    def test_invalid_depth_configuration_raises(self):
        with pytest.raises(ValueError):
            IDCA(self.database, max_target_depth=-1)
        with pytest.raises(ValueError):
            IDCA(self.database, max_candidate_depth=0)

    def test_external_target_object(self):
        external = _box([0.4, 0.4], [0.45, 0.45], label="external")
        result = self.idca.domination_count(
            external, self.reference, stop=MaxIterations(1), max_iterations=1
        )
        # no database object is excluded, so counts range over the full database
        assert len(result.bounds) == len(self.database) + 1

    def test_decomposition_trees_are_cached(self):
        self.idca.domination_count(
            self.target, self.reference, stop=MaxIterations(2), max_iterations=2
        )
        first = len(self.idca._trees)
        self.idca.domination_count(
            self.target, self.reference, stop=MaxIterations(2), max_iterations=2
        )
        assert len(self.idca._trees) == first


class TestIDCAAgainstOracle:
    """IDCA bounds must always bracket the exact possible-world distribution."""

    @pytest.mark.parametrize("seed", [1, 7, 23, 48])
    def test_bounds_bracket_exact_pmf(self, seed):
        database = discrete_sample_database(
            num_objects=9, samples_per_object=5, max_extent=0.35, seed=seed
        )
        rng = np.random.default_rng(seed)
        reference = DiscreteObject(rng.uniform(0, 1, size=(4, 2)), label="ref")
        target = 3
        exact = exact_domination_count_pmf(
            database, database[target], reference, exclude_indices=[target]
        )
        idca = IDCA(database, max_target_depth=4, max_reference_depth=4)
        for iterations in (0, 1, 3, 6):
            result = idca.domination_count(
                target,
                reference,
                stop=MaxIterations(iterations),
                max_iterations=iterations,
            )
            assert np.all(result.bounds.lower <= exact + 1e-9)
            assert np.all(result.bounds.upper >= exact - 1e-9)

    def test_convergence_to_exact_for_discrete_objects(self):
        database = discrete_sample_database(
            num_objects=6, samples_per_object=4, max_extent=0.3, seed=5
        )
        rng = np.random.default_rng(5)
        reference = DiscreteObject(rng.uniform(0, 1, size=(3, 2)), label="ref")
        target = 2
        exact = exact_domination_count_pmf(
            database, database[target], reference, exclude_indices=[target]
        )
        idca = IDCA(database, max_target_depth=8, max_reference_depth=8)
        result = idca.domination_count(
            target, reference, stop=UncertaintyBelow(1e-9), max_iterations=12
        )
        np.testing.assert_allclose(result.bounds.lower, exact, atol=1e-7)
        np.testing.assert_allclose(result.bounds.upper, exact, atol=1e-7)

    def test_certain_objects_need_no_refinement(self):
        """With certain (point) objects the filter step alone is exact."""
        points = [[0.1, 0.1], [0.2, 0.2], [0.5, 0.5], [0.9, 0.9]]
        database = UncertainDatabase(
            [DiscreteObject([p], label=f"p{i}") for i, p in enumerate(points)]
        )
        reference = DiscreteObject([[0.0, 0.0]], label="ref")
        idca = IDCA(database)
        result = idca.domination_count(2, reference, max_iterations=5)
        # objects 0 and 1 are closer to the reference than object 2; object 3 is not
        assert result.bounds.is_exact()
        assert result.bounds.pmf_bounds(2) == (1.0, 1.0)
        assert result.num_influence == 0
        assert result.complete_count == 2

    def test_k_cap_result_matches_full_run_below_cap(self):
        database = discrete_sample_database(
            num_objects=8, samples_per_object=4, max_extent=0.3, seed=9
        )
        rng = np.random.default_rng(9)
        reference = DiscreteObject(rng.uniform(0, 1, size=(3, 2)), label="ref")
        target = 1
        k = 3
        full = IDCA(database).domination_count(
            target, reference, stop=MaxIterations(4), max_iterations=4
        )
        capped = IDCA(database, k_cap=k).domination_count(
            target, reference, stop=MaxIterations(4), max_iterations=4
        )
        for count in range(k + 1):
            assert capped.bounds.pmf_bounds(count)[0] == pytest.approx(
                full.bounds.pmf_bounds(count)[0], abs=1e-9
            )
            assert capped.bounds.pmf_bounds(count)[1] == pytest.approx(
                full.bounds.pmf_bounds(count)[1], abs=1e-9
            )
        assert capped.bounds.less_than(k)[0] == pytest.approx(
            full.bounds.less_than(k)[0], abs=1e-9
        )


class TestIDCACriteria:
    def test_minmax_criterion_never_prunes_more(self):
        database = uniform_rectangle_database(150, max_extent=0.08, seed=4)
        reference = random_reference_object(extent=0.08, seed=5)
        target = target_by_mindist_rank(database, reference, rank=8)
        optimal = IDCA(database, criterion="optimal").domination_count(
            target, reference, stop=MaxIterations(0), max_iterations=0
        )
        minmax = IDCA(database, criterion="minmax").domination_count(
            target, reference, stop=MaxIterations(0), max_iterations=0
        )
        assert optimal.num_influence <= minmax.num_influence

    def test_threshold_decision_early_termination(self):
        database = uniform_rectangle_database(200, max_extent=0.01, seed=6)
        reference = random_reference_object(extent=0.01, seed=7)
        target = target_by_mindist_rank(database, reference, rank=3)
        idca = IDCA(database, k_cap=10)
        stop = ThresholdDecision(k=10, tau=0.5)
        result = idca.domination_count(
            target, reference, stop=stop, max_iterations=10
        )
        assert result.decision is True
        # the predicate for a rank-3 object and k=10 is decidable without any
        # refinement iteration in this easy configuration
        assert result.num_iterations == 0

    def test_threshold_decision_false(self):
        database = uniform_rectangle_database(200, max_extent=0.01, seed=8)
        reference = random_reference_object(extent=0.01, seed=9)
        target = target_by_mindist_rank(database, reference, rank=150)
        idca = IDCA(database, k_cap=2)
        result = idca.domination_count(
            target, reference, stop=ThresholdDecision(k=2, tau=0.5), max_iterations=10
        )
        assert result.decision is False
