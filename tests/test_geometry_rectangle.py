"""Unit tests for :mod:`repro.geometry.rectangle`."""

import numpy as np
import pytest

from repro.geometry import Interval, Rectangle, rectangles_to_array


class TestConstruction:
    def test_from_bounds(self):
        rect = Rectangle.from_bounds([0.0, 1.0], [2.0, 3.0])
        assert rect.dimensions == 2
        np.testing.assert_allclose(rect.lows, [0.0, 1.0])
        np.testing.assert_allclose(rect.highs, [2.0, 3.0])

    def test_from_bounds_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Rectangle.from_bounds([0.0], [1.0, 2.0])

    def test_from_point_is_degenerate(self):
        rect = Rectangle.from_point([1.0, 2.0, 3.0])
        assert rect.is_degenerate
        assert rect.volume == 0.0

    def test_from_center_extent(self):
        rect = Rectangle.from_center_extent([0.5, 0.5], 0.2)
        np.testing.assert_allclose(rect.lows, [0.4, 0.4])
        np.testing.assert_allclose(rect.highs, [0.6, 0.6])

    def test_from_center_extent_per_dimension(self):
        rect = Rectangle.from_center_extent([0.0, 0.0], [2.0, 4.0])
        np.testing.assert_allclose(rect.extents, [2.0, 4.0])

    def test_from_array_roundtrip(self):
        rect = Rectangle.from_bounds([0.0, 1.0], [2.0, 3.0])
        again = Rectangle.from_array(rect.to_array())
        assert again == rect

    def test_from_array_bad_shape_raises(self):
        with pytest.raises(ValueError):
            Rectangle.from_array(np.zeros((2, 3)))

    def test_bounding_of_points(self):
        pts = np.array([[0.0, 1.0], [2.0, -1.0], [1.0, 0.5]])
        rect = Rectangle.bounding(pts)
        np.testing.assert_allclose(rect.lows, [0.0, -1.0])
        np.testing.assert_allclose(rect.highs, [2.0, 1.0])

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rectangle.bounding(np.empty((0, 2)))

    def test_zero_dimensions_raises(self):
        with pytest.raises(ValueError):
            Rectangle(tuple())


class TestProperties:
    def test_center(self):
        rect = Rectangle.from_bounds([0.0, 0.0], [2.0, 4.0])
        np.testing.assert_allclose(rect.center, [1.0, 2.0])

    def test_volume(self):
        rect = Rectangle.from_bounds([0.0, 0.0], [2.0, 4.0])
        assert rect.volume == pytest.approx(8.0)

    def test_widest_axis(self):
        rect = Rectangle.from_bounds([0.0, 0.0], [1.0, 5.0])
        assert rect.widest_axis() == 1

    def test_getitem_returns_interval(self):
        rect = Rectangle.from_bounds([0.0, 1.0], [2.0, 3.0])
        assert rect[1] == Interval(1.0, 3.0)

    def test_corners_2d(self):
        rect = Rectangle.from_bounds([0.0, 0.0], [1.0, 2.0])
        corners = rect.corners()
        assert corners.shape == (4, 2)
        expected = {(0.0, 0.0), (1.0, 0.0), (0.0, 2.0), (1.0, 2.0)}
        assert {tuple(c) for c in corners} == expected


class TestPredicates:
    def test_contains_point(self):
        rect = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        assert rect.contains_point([0.5, 0.5])
        assert rect.contains_point([1.0, 0.0])
        assert not rect.contains_point([1.1, 0.5])

    def test_contains_rectangle(self):
        outer = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        inner = Rectangle.from_bounds([0.2, 0.2], [0.8, 0.8])
        assert outer.contains_rectangle(inner)
        assert not inner.contains_rectangle(outer)

    def test_intersects(self):
        a = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        b = Rectangle.from_bounds([0.5, 0.5], [2.0, 2.0])
        c = Rectangle.from_bounds([2.0, 2.0], [3.0, 3.0])
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_intersects_requires_overlap_in_all_dimensions(self):
        a = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        b = Rectangle.from_bounds([0.5, 2.0], [0.7, 3.0])
        assert not a.intersects(b)


class TestSetOperations:
    def test_intersection(self):
        a = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        b = Rectangle.from_bounds([0.5, -1.0], [2.0, 0.5])
        inter = a.intersection(b)
        assert inter == Rectangle.from_bounds([0.5, 0.0], [1.0, 0.5])

    def test_intersection_disjoint_is_none(self):
        a = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        b = Rectangle.from_bounds([2.0, 2.0], [3.0, 3.0])
        assert a.intersection(b) is None

    def test_union(self):
        a = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        b = Rectangle.from_bounds([2.0, -1.0], [3.0, 0.5])
        union = a.union(b)
        assert union == Rectangle.from_bounds([0.0, -1.0], [3.0, 1.0])

    def test_split_midpoint(self):
        rect = Rectangle.from_bounds([0.0, 0.0], [2.0, 2.0])
        left, right = rect.split(axis=0)
        assert left == Rectangle.from_bounds([0.0, 0.0], [1.0, 2.0])
        assert right == Rectangle.from_bounds([1.0, 0.0], [2.0, 2.0])

    def test_split_custom_point(self):
        rect = Rectangle.from_bounds([0.0, 0.0], [2.0, 2.0])
        left, right = rect.split(axis=1, at=0.5)
        assert left[1] == Interval(0.0, 0.5)
        assert right[1] == Interval(0.5, 2.0)

    def test_split_bad_axis_raises(self):
        rect = Rectangle.from_bounds([0.0], [1.0])
        with pytest.raises(ValueError):
            rect.split(axis=3)

    def test_clamp_point(self):
        rect = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        np.testing.assert_allclose(rect.clamp_point([-1.0, 0.5]), [0.0, 0.5])
        np.testing.assert_allclose(rect.clamp_point([2.0, 2.0]), [1.0, 1.0])


class TestArrayConversion:
    def test_rectangles_to_array_shape(self):
        rects = [
            Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]),
            Rectangle.from_bounds([1.0, 2.0], [3.0, 4.0]),
        ]
        arr = rectangles_to_array(rects)
        assert arr.shape == (2, 2, 2)
        np.testing.assert_allclose(arr[1, :, 0], [1.0, 2.0])
        np.testing.assert_allclose(arr[1, :, 1], [3.0, 4.0])

    def test_rectangles_to_array_empty_raises(self):
        with pytest.raises(ValueError):
            rectangles_to_array([])

    def test_rectangles_to_array_dimension_mismatch_raises(self):
        rects = [
            Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]),
            Rectangle.from_bounds([0.0], [1.0]),
        ]
        with pytest.raises(ValueError):
            rectangles_to_array(rects)
