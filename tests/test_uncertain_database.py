"""Unit tests for :class:`repro.uncertain.base.UncertainDatabase` and sampling utils."""

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.uncertain import (
    BoxUniformObject,
    DiscreteObject,
    UncertainDatabase,
    discretise_database,
    discretise_object,
    pairwise_distances,
    sample_database,
)


def _make_db(n=5):
    return UncertainDatabase(
        [
            BoxUniformObject(
                Rectangle.from_bounds([i, i], [i + 1.0, i + 1.0]), label=f"o{i}"
            )
            for i in range(n)
        ]
    )


class TestDatabase:
    def test_len_and_getitem(self):
        db = _make_db(4)
        assert len(db) == 4
        assert db[2].label == "o2"

    def test_iteration(self):
        db = _make_db(3)
        assert [obj.label for obj in db] == ["o0", "o1", "o2"]

    def test_dimensions(self):
        assert _make_db().dimensions == 2

    def test_empty_database_raises(self):
        with pytest.raises(ValueError):
            UncertainDatabase([])

    def test_mixed_dimensions_raise(self):
        objects = [
            BoxUniformObject(Rectangle.from_bounds([0.0], [1.0])),
            BoxUniformObject(Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])),
        ]
        with pytest.raises(ValueError):
            UncertainDatabase(objects)

    def test_mbrs_shape_and_values(self):
        db = _make_db(3)
        mbrs = db.mbrs()
        assert mbrs.shape == (3, 2, 2)
        np.testing.assert_allclose(mbrs[1, :, 0], [1.0, 1.0])
        np.testing.assert_allclose(mbrs[1, :, 1], [2.0, 2.0])

    def test_mbrs_cached(self):
        db = _make_db(3)
        assert db.mbrs() is db.mbrs()

    def test_labels(self):
        db = _make_db(2)
        assert db.labels() == ["o0", "o1"]

    def test_labels_synthesised_when_missing(self):
        db = UncertainDatabase(
            [BoxUniformObject(Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]))]
        )
        assert db.labels() == ["obj-0"]


class TestSamplingUtilities:
    def test_sample_database_shape(self):
        db = _make_db(4)
        rng = np.random.default_rng(0)
        samples = sample_database(db, 10, rng)
        assert samples.shape == (4, 10, 2)

    def test_sample_database_within_mbrs(self):
        db = _make_db(4)
        rng = np.random.default_rng(0)
        samples = sample_database(db, 25, rng)
        mbrs = db.mbrs()
        assert np.all(samples >= mbrs[:, None, :, 0])
        assert np.all(samples <= mbrs[:, None, :, 1])

    def test_sample_database_invalid_count_raises(self):
        db = _make_db(2)
        with pytest.raises(ValueError):
            sample_database(db, 0, np.random.default_rng(0))

    def test_discretise_object_produces_discrete(self):
        obj = BoxUniformObject(Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]))
        rng = np.random.default_rng(1)
        disc = discretise_object(obj, 30, rng)
        assert isinstance(disc, DiscreteObject)
        assert disc.points.shape == (30, 2)
        assert obj.mbr.contains_rectangle(disc.mbr)

    def test_discretise_object_keeps_existing_discrete(self):
        disc = DiscreteObject([[0.0, 0.0], [1.0, 1.0]])
        rng = np.random.default_rng(1)
        assert discretise_object(disc, 10, rng) is disc

    def test_discretise_database(self):
        db = _make_db(3)
        rng = np.random.default_rng(2)
        discrete = discretise_database(db, 20, rng)
        assert len(discrete) == 3
        assert all(isinstance(obj, DiscreteObject) for obj in discrete)

    def test_pairwise_distances_euclidean(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 3.0]])
        dists = pairwise_distances(a, b)
        np.testing.assert_allclose(dists, [[3.0], [np.sqrt(10.0)]])

    def test_pairwise_distances_chebyshev(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert pairwise_distances(a, b, p=np.inf)[0, 0] == pytest.approx(4.0)

    def test_pairwise_distances_shape(self):
        a = np.zeros((5, 3))
        b = np.ones((7, 3))
        assert pairwise_distances(a, b).shape == (5, 7)
