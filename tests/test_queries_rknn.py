"""Tests for probabilistic threshold reverse kNN queries (Corollary 5)."""

import numpy as np
import pytest

from repro.baselines import exact_domination_count_pmf
from repro.datasets import discrete_sample_database, uniform_rectangle_database
from repro.queries import probabilistic_rknn_threshold
from repro.uncertain import DiscreteObject, PointObject, UncertainDatabase


def exact_rknn_probability(database, candidate_index, query, k):
    """Oracle: P(query is among the kNN of the candidate) for discrete data."""
    pmf = exact_domination_count_pmf(
        database,
        query,
        database[candidate_index],
        exclude_indices=[candidate_index],
    )
    return float(pmf[:k].sum())


class TestAgainstOracle:
    @pytest.mark.parametrize("k,tau", [(1, 0.3), (2, 0.5), (2, 0.75)])
    def test_decisions_match_oracle(self, k, tau):
        database = discrete_sample_database(
            num_objects=7, samples_per_object=4, max_extent=0.3, seed=41
        )
        rng = np.random.default_rng(41)
        query = DiscreteObject(rng.uniform(0, 1, size=(3, 2)), label="query")
        result = probabilistic_rknn_threshold(
            database, query, k=k, tau=tau, max_iterations=15
        )
        for match in result.matches:
            assert exact_rknn_probability(database, match.index, query, k) >= tau - 1e-9
        for match in result.rejected:
            assert exact_rknn_probability(database, match.index, query, k) <= tau + 1e-9
        for match in result.undecided:
            assert match.probability_lower <= tau <= match.probability_upper

    def test_probability_bounds_bracket_oracle(self):
        database = discrete_sample_database(
            num_objects=7, samples_per_object=3, max_extent=0.3, seed=43
        )
        rng = np.random.default_rng(43)
        query = DiscreteObject(rng.uniform(0, 1, size=(2, 2)), label="query")
        result = probabilistic_rknn_threshold(database, query, k=2, tau=0.5, max_iterations=5)
        for match in result.all_evaluated():
            exact = exact_rknn_probability(database, match.index, query, 2)
            assert match.probability_lower <= exact + 1e-9
            assert match.probability_upper >= exact - 1e-9


class TestQueryMechanics:
    def test_certain_data_matches_classic_rknn(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 1, size=(30, 2))
        database = UncertainDatabase([PointObject(p) for p in points])
        query_point = np.array([0.5, 0.5])
        query = PointObject(query_point)
        k = 3
        result = probabilistic_rknn_threshold(database, query, k=k, tau=0.5)
        # classic RkNN: objects for which the query is among their k nearest
        # neighbours (counting the other database objects)
        expected = set()
        for i, p in enumerate(points):
            dists = np.linalg.norm(points - p, axis=1)
            dists[i] = np.inf
            closer = np.sum(dists < np.linalg.norm(query_point - p))
            if closer < k:
                expected.add(i)
        assert set(result.result_indices()) == expected
        assert not result.undecided

    def test_candidate_subset_is_respected(self):
        database = uniform_rectangle_database(50, max_extent=0.02, seed=3)
        query = PointObject([0.5, 0.5])
        result = probabilistic_rknn_threshold(
            database, query, k=2, tau=0.5, candidate_indices=[0, 1, 2]
        )
        evaluated = {m.index for m in result.all_evaluated()}
        assert evaluated <= {0, 1, 2}

    def test_query_given_as_index_is_excluded(self):
        database = uniform_rectangle_database(30, max_extent=0.02, seed=5)
        result = probabilistic_rknn_threshold(database, 4, k=2, tau=0.5)
        assert 4 not in {m.index for m in result.all_evaluated()}

    def test_accounting(self):
        database = uniform_rectangle_database(30, max_extent=0.02, seed=7)
        query = PointObject([0.2, 0.8])
        result = probabilistic_rknn_threshold(database, query, k=2, tau=0.5)
        assert result.candidate_count() == len(database)
        assert result.elapsed_seconds >= 0.0

    def test_invalid_parameters_raise(self):
        database = uniform_rectangle_database(10, max_extent=0.02, seed=9)
        query = PointObject([0.5, 0.5])
        with pytest.raises(ValueError):
            probabilistic_rknn_threshold(database, query, k=0, tau=0.5)
        with pytest.raises(ValueError):
            probabilistic_rknn_threshold(database, query, k=1, tau=-0.1)
