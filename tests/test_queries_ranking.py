"""Tests for inverse ranking (Corollary 3) and expected-rank ranking (Corollary 6)."""

import numpy as np
import pytest

from repro.baselines import exact_domination_count_pmf
from repro.datasets import discrete_sample_database, uniform_rectangle_database
from repro.queries import (
    expected_rank_ranking,
    probabilistic_inverse_ranking,
)
from repro.uncertain import DiscreteObject, PointObject, UncertainDatabase


class TestInverseRanking:
    def setup_method(self):
        self.database = discrete_sample_database(
            num_objects=8, samples_per_object=4, max_extent=0.3, seed=51
        )
        rng = np.random.default_rng(51)
        self.reference = DiscreteObject(rng.uniform(0, 1, size=(3, 2)), label="ref")
        self.target = 4

    def test_rank_distribution_brackets_oracle(self):
        exact = exact_domination_count_pmf(
            self.database,
            self.database[self.target],
            self.reference,
            exclude_indices=[self.target],
        )
        distribution = probabilistic_inverse_ranking(
            self.database, self.target, self.reference, max_iterations=8
        )
        for rank in range(1, len(distribution) + 1):
            lower, upper = distribution.rank_bounds(rank)
            assert lower <= exact[rank - 1] + 1e-9
            assert upper >= exact[rank - 1] - 1e-9

    def test_rank_is_count_plus_one(self):
        distribution = probabilistic_inverse_ranking(
            self.database, self.target, self.reference, max_iterations=4
        )
        bounds = distribution.idca_result.bounds
        assert distribution.rank_bounds(1) == bounds.pmf_bounds(0)
        assert distribution.rank_bounds(3) == bounds.pmf_bounds(2)

    def test_rank_at_most_is_monotone(self):
        distribution = probabilistic_inverse_ranking(
            self.database, self.target, self.reference, max_iterations=4
        )
        lowers = [distribution.rank_at_most(r)[0] for r in range(1, len(distribution) + 1)]
        assert lowers == sorted(lowers)
        assert distribution.rank_at_most(len(distribution)) == (1.0, 1.0)

    def test_expected_rank_bounds_contain_exact_expected_rank(self):
        exact = exact_domination_count_pmf(
            self.database,
            self.database[self.target],
            self.reference,
            exclude_indices=[self.target],
        )
        exact_expected_rank = float(np.arange(1, len(exact) + 1) @ exact)
        distribution = probabilistic_inverse_ranking(
            self.database, self.target, self.reference, max_iterations=8
        )
        lower, upper = distribution.expected_rank_bounds()
        assert lower - 1e-9 <= exact_expected_rank <= upper + 1e-9

    def test_uncertainty_budget_stops_early(self):
        loose = probabilistic_inverse_ranking(
            self.database,
            self.target,
            self.reference,
            max_iterations=10,
            uncertainty_budget=5.0,
        )
        tight = probabilistic_inverse_ranking(
            self.database,
            self.target,
            self.reference,
            max_iterations=10,
            uncertainty_budget=0.05,
        )
        assert loose.idca_result.num_iterations <= tight.idca_result.num_iterations

    def test_invalid_rank_raises(self):
        distribution = probabilistic_inverse_ranking(
            self.database, self.target, self.reference, max_iterations=2
        )
        with pytest.raises(ValueError):
            distribution.rank_bounds(0)
        with pytest.raises(ValueError):
            distribution.rank_bounds(len(distribution) + 1)

    def test_most_likely_rank_in_range(self):
        distribution = probabilistic_inverse_ranking(
            self.database, self.target, self.reference, max_iterations=5
        )
        assert 1 <= distribution.most_likely_rank() <= len(distribution)


class TestExpectedRankRanking:
    def test_certain_data_matches_distance_order(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 1, size=(15, 2))
        database = UncertainDatabase([PointObject(p) for p in points])
        query = PointObject([0.5, 0.5])
        ranking = expected_rank_ranking(database, query, max_iterations=2)
        dists = np.linalg.norm(points - 0.5, axis=1)
        expected_order = list(np.argsort(dists))
        assert ranking.order() == expected_order
        # certain data: every expected-rank interval collapses to a point
        for entry in ranking.ranking:
            assert entry.width == pytest.approx(0.0, abs=1e-9)

    def test_expected_rank_intervals_contain_exact_values(self):
        database = discrete_sample_database(
            num_objects=6, samples_per_object=3, max_extent=0.25, seed=61
        )
        rng = np.random.default_rng(61)
        query = DiscreteObject(rng.uniform(0, 1, size=(2, 2)), label="query")
        ranking = expected_rank_ranking(
            database, query, max_iterations=10, uncertainty_budget=0.0
        )
        for entry in ranking.ranking:
            pmf = exact_domination_count_pmf(
                database, database[entry.index], query, exclude_indices=[entry.index]
            )
            exact_expected_rank = float(np.arange(1, len(pmf) + 1) @ pmf)
            assert entry.expected_rank_lower - 1e-6 <= exact_expected_rank
            assert entry.expected_rank_upper + 1e-6 >= exact_expected_rank

    def test_top_returns_prefix(self):
        database = uniform_rectangle_database(20, max_extent=0.02, seed=71)
        query = PointObject([0.3, 0.3])
        ranking = expected_rank_ranking(database, query, max_iterations=2)
        assert ranking.top(5) == ranking.ranking[:5]
        assert len(ranking.order()) == len(database)

    def test_candidate_subset(self):
        database = uniform_rectangle_database(20, max_extent=0.02, seed=73)
        query = PointObject([0.3, 0.3])
        ranking = expected_rank_ranking(
            database, query, candidate_indices=[1, 3, 5], max_iterations=2
        )
        assert set(ranking.order()) == {1, 3, 5}

    def test_query_index_excluded(self):
        database = uniform_rectangle_database(20, max_extent=0.02, seed=75)
        ranking = expected_rank_ranking(database, 2, max_iterations=1)
        assert 2 not in ranking.order()

    def test_truncated_idca_rejected(self):
        from repro.core import IDCA

        database = uniform_rectangle_database(20, max_extent=0.02, seed=77)
        query = PointObject([0.3, 0.3])
        with pytest.raises(ValueError):
            expected_rank_ranking(database, query, idca=IDCA(database, k_cap=2))
