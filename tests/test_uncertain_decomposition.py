"""Unit tests for the kd-tree decomposition of uncertainty regions."""

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.uncertain import (
    BoxUniformObject,
    DecompositionTree,
    DiscreteObject,
    PointObject,
    TruncatedGaussianObject,
    decompose_object,
)


class TestBoxDecomposition:
    def setup_method(self):
        self.obj = BoxUniformObject(Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]))
        self.tree = DecompositionTree(self.obj)

    def test_depth_zero_is_whole_object(self):
        parts = self.tree.partitions(0)
        assert len(parts) == 1
        assert parts[0].region == self.obj.mbr
        assert parts[0].probability == pytest.approx(1.0)

    def test_depth_one_halves(self):
        parts = self.tree.partitions(1)
        assert len(parts) == 2
        assert all(p.probability == pytest.approx(0.5) for p in parts)

    @pytest.mark.parametrize("depth", [1, 2, 3, 4, 5])
    def test_partition_count_and_mass(self, depth):
        parts = self.tree.partitions(depth)
        assert len(parts) == 2 ** depth
        assert sum(p.probability for p in parts) == pytest.approx(1.0)

    def test_median_split_gives_equal_masses(self):
        parts = self.tree.partitions(4)
        for part in parts:
            assert part.probability == pytest.approx(1.0 / 16.0)

    def test_partitions_cover_region(self):
        parts = self.tree.partitions(3)
        total_volume = sum(p.region.volume for p in parts)
        assert total_volume == pytest.approx(self.obj.mbr.volume)

    def test_partitions_are_disjoint_in_volume(self):
        parts = self.tree.partitions(3)
        for i, a in enumerate(parts):
            for b in parts[i + 1 :]:
                overlap = a.region.intersection(b.region)
                if overlap is not None:
                    assert overlap.volume == pytest.approx(0.0)

    def test_round_robin_cycles_axes(self):
        parts = self.tree.partitions(2)
        # after two round-robin splits of the unit square every partition is a
        # quarter square
        for part in parts:
            np.testing.assert_allclose(part.region.extents, [0.5, 0.5])

    def test_widest_axis_policy(self):
        elongated = BoxUniformObject(Rectangle.from_bounds([0.0, 0.0], [4.0, 1.0]))
        tree = DecompositionTree(elongated, axis_policy="widest")
        parts = tree.partitions(2)
        # the widest policy keeps splitting the long axis first
        assert all(p.region.extents[0] == pytest.approx(1.0) for p in parts)

    def test_max_depth_caps_partitions(self):
        tree = DecompositionTree(self.obj, max_depth=2)
        assert len(tree.partitions(5)) == 4

    def test_negative_depth_raises(self):
        with pytest.raises(ValueError):
            self.tree.partitions(-1)

    def test_partitions_arrays_match_partitions(self):
        regions, masses = self.tree.partitions_arrays(3)
        parts = self.tree.partitions(3)
        assert regions.shape == (len(parts), 2, 2)
        np.testing.assert_allclose(masses, [p.probability for p in parts])

    def test_num_partitions(self):
        assert self.tree.num_partitions(3) == 8

    def test_materialisation_is_incremental(self):
        # asking for a deeper level after a shallow one must not lose nodes
        assert len(self.tree.partitions(1)) == 2
        assert len(self.tree.partitions(4)) == 16
        assert len(self.tree.partitions(2)) == 4


class TestGaussianDecomposition:
    def test_masses_are_halved_per_level(self):
        obj = TruncatedGaussianObject([0.0, 0.0], [1.0, 1.0])
        tree = DecompositionTree(obj)
        for depth in (1, 2, 3):
            parts = tree.partitions(depth)
            assert len(parts) == 2 ** depth
            for part in parts:
                assert part.probability == pytest.approx(0.5 ** depth, abs=1e-6)

    def test_total_mass_preserved(self):
        obj = TruncatedGaussianObject([0.3, 0.7], [0.1, 0.05])
        parts = decompose_object(obj, 4)
        assert sum(p.probability for p in parts) == pytest.approx(1.0, abs=1e-9)


class TestDiscreteDecomposition:
    def setup_method(self):
        rng = np.random.default_rng(5)
        self.obj = DiscreteObject(rng.uniform(0, 1, size=(9, 2)), label="disc")
        self.tree = DecompositionTree(self.obj)

    def test_total_mass_preserved(self):
        for depth in (1, 2, 3, 4, 6):
            parts = self.tree.partitions(depth)
            assert sum(p.probability for p in parts) == pytest.approx(1.0)

    def test_deep_decomposition_reaches_singletons(self):
        parts = self.tree.partitions(10)
        assert len(parts) == 9
        for part in parts:
            assert part.region.is_degenerate

    def test_singleton_partitions_have_alternative_weights(self):
        parts = self.tree.partitions(10)
        masses = sorted(p.probability for p in parts)
        np.testing.assert_allclose(masses, sorted(self.obj.weights), atol=1e-12)

    def test_unsplittable_point_object(self):
        obj = PointObject([0.5, 0.5])
        tree = DecompositionTree(obj)
        parts = tree.partitions(5)
        assert len(parts) == 1
        assert parts[0].probability == pytest.approx(1.0)

    def test_duplicate_alternatives_stop_splitting(self):
        obj = DiscreteObject([[0.5, 0.5], [0.5, 0.5], [0.2, 0.2]], [0.25, 0.25, 0.5])
        tree = DecompositionTree(obj)
        parts = tree.partitions(8)
        assert sum(p.probability for p in parts) == pytest.approx(1.0)
        # the duplicated location cannot be split further
        assert len(parts) == 2


class TestExistentialUncertainty:
    def test_root_mass_is_existence_probability(self):
        obj = BoxUniformObject(
            Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]), existence_probability=0.7
        )
        tree = DecompositionTree(obj)
        assert tree.root.probability == pytest.approx(0.7)
        parts = tree.partitions(2)
        assert sum(p.probability for p in parts) == pytest.approx(0.7)
