"""Unit tests for continuous uncertain objects."""

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.uncertain import BoxUniformObject, MixtureObject, TruncatedGaussianObject


class TestBoxUniformObject:
    def setup_method(self):
        self.obj = BoxUniformObject(Rectangle.from_bounds([0.0, 0.0], [2.0, 4.0]))

    def test_mbr(self):
        assert self.obj.mbr == Rectangle.from_bounds([0.0, 0.0], [2.0, 4.0])

    def test_dimensions(self):
        assert self.obj.dimensions == 2

    def test_mass_total(self):
        assert self.obj.mass_in(self.obj.mbr) == pytest.approx(1.0)

    def test_mass_half(self):
        half = Rectangle.from_bounds([0.0, 0.0], [1.0, 4.0])
        assert self.obj.mass_in(half) == pytest.approx(0.5)

    def test_mass_quarter(self):
        quarter = Rectangle.from_bounds([0.0, 0.0], [1.0, 2.0])
        assert self.obj.mass_in(quarter) == pytest.approx(0.25)

    def test_mass_outside_is_zero(self):
        outside = Rectangle.from_bounds([5.0, 5.0], [6.0, 6.0])
        assert self.obj.mass_in(outside) == 0.0

    def test_mass_of_superset_is_one(self):
        superset = Rectangle.from_bounds([-1.0, -1.0], [3.0, 5.0])
        assert self.obj.mass_in(superset) == pytest.approx(1.0)

    def test_conditional_median_full_region(self):
        assert self.obj.conditional_median(self.obj.mbr, axis=0) == pytest.approx(1.0)
        assert self.obj.conditional_median(self.obj.mbr, axis=1) == pytest.approx(2.0)

    def test_conditional_median_subregion(self):
        sub = Rectangle.from_bounds([1.0, 0.0], [2.0, 4.0])
        assert self.obj.conditional_median(sub, axis=0) == pytest.approx(1.5)

    def test_conditional_median_disjoint_raises(self):
        outside = Rectangle.from_bounds([5.0, 5.0], [6.0, 6.0])
        with pytest.raises(ValueError):
            self.obj.conditional_median(outside, axis=0)

    def test_samples_inside_region(self):
        rng = np.random.default_rng(0)
        samples = self.obj.sample(500, rng)
        assert samples.shape == (500, 2)
        assert np.all(samples >= self.obj.mbr.lows)
        assert np.all(samples <= self.obj.mbr.highs)

    def test_mean_is_center(self):
        np.testing.assert_allclose(self.obj.mean(), [1.0, 2.0])

    def test_degenerate_dimension_mass(self):
        flat = BoxUniformObject(Rectangle.from_bounds([0.0, 1.0], [2.0, 1.0]))
        inside = Rectangle.from_bounds([0.0, 0.5], [1.0, 1.5])
        assert flat.mass_in(inside) == pytest.approx(0.5)

    def test_existence_probability_scales_mass(self):
        partial = BoxUniformObject(
            Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]), existence_probability=0.6
        )
        assert partial.mass_in(partial.mbr) == pytest.approx(0.6)

    def test_invalid_existence_probability_raises(self):
        with pytest.raises(ValueError):
            BoxUniformObject(
                Rectangle.from_bounds([0.0], [1.0]), existence_probability=0.0
            )

    def test_decompose_splits_mass_exactly(self):
        result = self.obj.decompose(self.obj.mbr, axis=1)
        assert result is not None
        left, right, left_mass, right_mass = result
        assert left_mass == pytest.approx(0.5)
        assert right_mass == pytest.approx(0.5)
        assert left.union(right) == self.obj.mbr

    def test_decompose_degenerate_axis_returns_none(self):
        flat = BoxUniformObject(Rectangle.from_bounds([0.0, 1.0], [2.0, 1.0]))
        assert flat.decompose(flat.mbr, axis=1) is None

    def test_is_certain_false(self):
        assert not self.obj.is_certain()


class TestTruncatedGaussianObject:
    def setup_method(self):
        self.obj = TruncatedGaussianObject([0.0, 0.0], [1.0, 2.0], truncation_sigmas=3.0)

    def test_mbr_matches_truncation(self):
        np.testing.assert_allclose(self.obj.mbr.lows, [-3.0, -6.0])
        np.testing.assert_allclose(self.obj.mbr.highs, [3.0, 6.0])

    def test_total_mass_is_one(self):
        assert self.obj.mass_in(self.obj.mbr) == pytest.approx(1.0)

    def test_mass_half_by_symmetry(self):
        half = Rectangle.from_bounds([-3.0, -6.0], [0.0, 6.0])
        assert self.obj.mass_in(half) == pytest.approx(0.5, abs=1e-9)

    def test_mass_monotone_in_region_size(self):
        small = Rectangle.from_bounds([-0.5, -0.5], [0.5, 0.5])
        large = Rectangle.from_bounds([-1.5, -1.5], [1.5, 1.5])
        assert self.obj.mass_in(small) < self.obj.mass_in(large)

    def test_mass_outside_is_zero(self):
        outside = Rectangle.from_bounds([10.0, 10.0], [11.0, 11.0])
        assert self.obj.mass_in(outside) == 0.0

    def test_conditional_median_full_region_is_mean(self):
        assert self.obj.conditional_median(self.obj.mbr, axis=0) == pytest.approx(0.0, abs=1e-9)

    def test_conditional_median_subregion_splits_mass(self):
        sub = Rectangle.from_bounds([0.0, -6.0], [3.0, 6.0])
        median = self.obj.conditional_median(sub, axis=0)
        left = Rectangle.from_bounds([0.0, -6.0], [median, 6.0])
        right = Rectangle.from_bounds([median, -6.0], [3.0, 6.0])
        assert self.obj.mass_in(left) == pytest.approx(self.obj.mass_in(right), abs=1e-6)

    def test_samples_inside_truncation(self):
        rng = np.random.default_rng(1)
        samples = self.obj.sample(1000, rng)
        assert np.all(samples >= self.obj.mbr.lows - 1e-12)
        assert np.all(samples <= self.obj.mbr.highs + 1e-12)

    def test_sample_mean_close_to_mean(self):
        rng = np.random.default_rng(2)
        samples = self.obj.sample(4000, rng)
        np.testing.assert_allclose(samples.mean(axis=0), self.obj.mean(), atol=0.15)

    def test_mean_of_symmetric_truncation_is_mu(self):
        np.testing.assert_allclose(self.obj.mean(), [0.0, 0.0], atol=1e-9)

    def test_asymmetric_bounds(self):
        obj = TruncatedGaussianObject(
            [0.0], [1.0], bounds=Rectangle.from_bounds([0.0], [2.0])
        )
        assert obj.mass_in(obj.mbr) == pytest.approx(1.0)
        assert obj.mean()[0] > 0.0

    def test_zero_std_dimension(self):
        obj = TruncatedGaussianObject([1.0, 2.0], [0.0, 1.0])
        assert obj.mbr.intervals[0].is_degenerate
        rng = np.random.default_rng(3)
        samples = obj.sample(50, rng)
        assert np.all(samples[:, 0] == 1.0)

    def test_negative_std_raises(self):
        with pytest.raises(ValueError):
            TruncatedGaussianObject([0.0], [-1.0])

    def test_invalid_truncation_raises(self):
        with pytest.raises(ValueError):
            TruncatedGaussianObject([0.0], [1.0], truncation_sigmas=0.0)

    def test_bounds_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            TruncatedGaussianObject(
                [0.0, 0.0], [1.0, 1.0], bounds=Rectangle.from_bounds([0.0], [1.0])
            )

    def test_decompose_halves_mass(self):
        result = self.obj.decompose(self.obj.mbr, axis=0)
        assert result is not None
        _, _, left_mass, right_mass = result
        assert left_mass == pytest.approx(0.5, abs=1e-6)
        assert right_mass == pytest.approx(0.5, abs=1e-6)


class TestMixtureObject:
    def setup_method(self):
        self.left = BoxUniformObject(Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]))
        self.right = BoxUniformObject(Rectangle.from_bounds([3.0, 0.0], [4.0, 1.0]))
        self.mixture = MixtureObject([self.left, self.right], [0.25, 0.75])

    def test_mbr_covers_components(self):
        assert self.mixture.mbr == Rectangle.from_bounds([0.0, 0.0], [4.0, 1.0])

    def test_weights_normalised(self):
        mixture = MixtureObject([self.left, self.right], [1.0, 3.0])
        np.testing.assert_allclose(mixture.weights, [0.25, 0.75])

    def test_total_mass(self):
        assert self.mixture.mass_in(self.mixture.mbr) == pytest.approx(1.0)

    def test_mass_of_component_region(self):
        assert self.mixture.mass_in(self.left.mbr) == pytest.approx(0.25)
        assert self.mixture.mass_in(self.right.mbr) == pytest.approx(0.75)

    def test_mass_in_gap_is_zero(self):
        gap = Rectangle.from_bounds([1.5, 0.0], [2.5, 1.0])
        assert self.mixture.mass_in(gap) == pytest.approx(0.0)

    def test_conditional_median_splits_mass(self):
        median = self.mixture.conditional_median(self.mixture.mbr, axis=0)
        left = Rectangle.from_bounds([0.0, 0.0], [median, 1.0])
        assert self.mixture.mass_in(left) == pytest.approx(0.5, abs=1e-6)

    def test_mean_is_weighted_average(self):
        expected = 0.25 * self.left.mean() + 0.75 * self.right.mean()
        np.testing.assert_allclose(self.mixture.mean(), expected)

    def test_samples_respect_mixture_weights(self):
        rng = np.random.default_rng(4)
        samples = self.mixture.sample(4000, rng)
        fraction_right = np.mean(samples[:, 0] > 2.0)
        assert fraction_right == pytest.approx(0.75, abs=0.05)

    def test_empty_components_raises(self):
        with pytest.raises(ValueError):
            MixtureObject([], [])

    def test_mismatched_weights_raises(self):
        with pytest.raises(ValueError):
            MixtureObject([self.left], [0.5, 0.5])

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            MixtureObject([self.left, self.right], [-0.1, 1.1])

    def test_all_zero_weights_raises(self):
        with pytest.raises(ValueError):
            MixtureObject([self.left, self.right], [0.0, 0.0])

    def test_decompose_masses_sum_to_total(self):
        result = self.mixture.decompose(self.mixture.mbr, axis=0)
        assert result is not None
        _, _, left_mass, right_mass = result
        assert left_mass + right_mass == pytest.approx(1.0, abs=1e-6)
