"""Tests for the design-choice ablation experiments (small configurations)."""

import pytest

from repro.experiments import (
    ablation_adaptive_refinement,
    ablation_axis_policy,
    ablation_decomposition_depth,
    ablation_expected_distance_agreement,
)


class TestDecompositionDepthAblation:
    def test_deeper_caps_do_not_hurt_quality(self):
        table = ablation_decomposition_depth(
            depths=(1, 3), num_objects=300, num_queries=2, iterations=3, seed=0
        )
        uncertainties = table.column("uncertainty")
        assert uncertainties[1] <= uncertainties[0] + 1e-9

    def test_columns_complete(self):
        table = ablation_decomposition_depth(
            depths=(2,), num_objects=200, num_queries=1, iterations=2, seed=0
        )
        row = table.rows[0]
        assert set(row) == {"depth_cap", "uncertainty", "runtime_seconds"}


class TestAxisPolicyAblation:
    def test_both_policies_run(self):
        table = ablation_axis_policy(
            num_objects=300, num_queries=2, iterations=3, seed=0
        )
        assert set(table.column("policy")) == {"round_robin", "widest"}
        assert all(row["uncertainty"] >= 0.0 for row in table)


class TestAdaptiveRefinementAblation:
    def test_zero_threshold_matches_uniform_quality(self):
        table = ablation_adaptive_refinement(
            thresholds=(0.0,), num_objects=300, num_queries=2, iterations=3, seed=0
        )
        rows = {row["threshold"]: row for row in table}
        assert rows[0.0]["uncertainty"] == pytest.approx(
            rows["uniform"]["uncertainty"], abs=1e-9
        )

    def test_generous_threshold_reduces_partitions(self):
        table = ablation_adaptive_refinement(
            thresholds=(0.5,), num_objects=300, num_queries=2, iterations=4, seed=0
        )
        rows = {row["threshold"]: row for row in table}
        assert rows[0.5]["max_partitions"] <= rows["uniform"]["max_partitions"]


class TestExpectedDistanceAgreementAblation:
    def test_reports_every_query(self):
        table = ablation_expected_distance_agreement(
            num_objects=100,
            max_extent=0.08,
            k=3,
            num_queries=2,
            max_iterations=3,
            seed=0,
        )
        assert len(table) == 2
        for row in table:
            assert row["heuristic_size"] == 3
            assert row["symmetric_difference"] >= 0
