"""Tests for the index substrate: R-tree and vectorised scans."""

import numpy as np
import pytest

from repro.datasets import uniform_rectangle_database
from repro.geometry import Rectangle, max_dist_arrays, min_dist_arrays
from repro.index import RTree, knn_candidates, min_dist_order, range_candidates


@pytest.fixture(scope="module")
def database():
    return uniform_rectangle_database(300, max_extent=0.03, seed=42)


@pytest.fixture(scope="module")
def mbrs(database):
    return database.mbrs()


@pytest.fixture(scope="module")
def rtree(mbrs):
    return RTree(mbrs, leaf_capacity=16, fanout=8)


class TestRTreeStructure:
    def test_len(self, rtree, mbrs):
        assert len(rtree) == mbrs.shape[0]

    def test_height_positive(self, rtree):
        assert rtree.height() >= 2

    def test_all_entries_present_exactly_once(self, rtree, mbrs):
        seen = []
        for node in rtree.iter_nodes():
            if node.is_leaf:
                seen.extend(node.entries.tolist())
        assert sorted(seen) == list(range(mbrs.shape[0]))

    def test_node_mbrs_contain_children(self, rtree, mbrs):
        for node in rtree.iter_nodes():
            if node.is_leaf:
                entry_mbrs = mbrs[node.entries]
                assert np.all(node.mbr[:, 0] <= entry_mbrs[..., 0].min(axis=0) + 1e-12)
                assert np.all(node.mbr[:, 1] >= entry_mbrs[..., 1].max(axis=0) - 1e-12)
            else:
                for child in node.children:
                    assert np.all(node.mbr[:, 0] <= child.mbr[:, 0] + 1e-12)
                    assert np.all(node.mbr[:, 1] >= child.mbr[:, 1] - 1e-12)

    def test_leaf_capacity_respected(self, rtree):
        for node in rtree.iter_nodes():
            if node.is_leaf:
                assert len(node.entries) <= 16
            else:
                assert len(node.children) <= 8

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RTree(np.empty((0, 2, 2)))
        with pytest.raises(ValueError):
            RTree(np.zeros((3, 2, 2)), leaf_capacity=1)
        with pytest.raises(ValueError):
            RTree(np.zeros((2, 2)))

    def test_single_leaf_tree(self):
        mbrs = np.zeros((5, 2, 2))
        mbrs[..., 1] = 1.0
        tree = RTree(mbrs, leaf_capacity=8)
        assert tree.height() == 1
        assert tree.root.is_leaf


class TestRTreeRangeQuery:
    def test_matches_linear_scan(self, rtree, mbrs):
        rng = np.random.default_rng(0)
        for _ in range(20):
            lo = rng.uniform(0, 0.8, size=2)
            region = Rectangle.from_bounds(lo, lo + rng.uniform(0.05, 0.3, size=2))
            expected = range_candidates(mbrs, region)
            actual = rtree.range_query(region)
            np.testing.assert_array_equal(actual, expected)

    def test_empty_result(self, rtree):
        region = Rectangle.from_bounds([5.0, 5.0], [6.0, 6.0])
        assert rtree.range_query(region).shape == (0,)

    def test_full_coverage(self, rtree, mbrs):
        region = Rectangle.from_bounds([-1.0, -1.0], [2.0, 2.0])
        assert rtree.range_query(region).shape[0] == mbrs.shape[0]


class TestKNNCandidates:
    def _reference_candidates(self, mbrs, query, k):
        """Straightforward reference implementation of the MinDist/MaxDist filter."""
        q = query.to_array()
        mins = min_dist_arrays(mbrs, q)
        maxs = max_dist_arrays(mbrs, q)
        threshold = np.sort(maxs)[k - 1]
        return set(np.flatnonzero(mins <= threshold))

    def test_scan_matches_reference(self, mbrs):
        rng = np.random.default_rng(1)
        for _ in range(10):
            query = Rectangle.from_center_extent(rng.uniform(0, 1, 2), 0.02)
            for k in (1, 3, 10):
                expected = self._reference_candidates(mbrs, query, k)
                actual = set(knn_candidates(mbrs, query, k))
                assert actual == expected

    def test_rtree_candidates_are_superset_of_true_knn(self, rtree, mbrs):
        """The candidate set must contain every object that could be a kNN."""
        rng = np.random.default_rng(2)
        for _ in range(10):
            query = Rectangle.from_center_extent(rng.uniform(0, 1, 2), 0.02)
            k = 5
            candidates = set(rtree.knn_candidates(query, k))
            # any object whose MaxDist is among the k smallest MaxDists could be
            # a true kNN in some possible world and must not be missed
            maxs = max_dist_arrays(mbrs, query.to_array())
            top_by_max = set(np.argsort(maxs)[:k])
            assert top_by_max <= candidates

    def test_rtree_candidates_match_scan_filter(self, rtree, mbrs):
        rng = np.random.default_rng(3)
        for _ in range(10):
            query = Rectangle.from_center_extent(rng.uniform(0, 1, 2), 0.02)
            scan = set(knn_candidates(mbrs, query, 4))
            tree = set(rtree.knn_candidates(query, 4))
            assert tree == scan

    def test_exclude_mask(self, mbrs):
        query = Rectangle.from_center_extent([0.5, 0.5], 0.02)
        exclude = np.zeros(mbrs.shape[0], dtype=bool)
        all_candidates = knn_candidates(mbrs, query, 3)
        exclude[all_candidates[0]] = True
        filtered = knn_candidates(mbrs, query, 3, exclude=exclude)
        assert all_candidates[0] not in filtered

    def test_rtree_exclude_set(self, rtree):
        query = Rectangle.from_center_extent([0.5, 0.5], 0.02)
        full = rtree.knn_candidates(query, 3)
        excluded = rtree.knn_candidates(query, 3, exclude={int(full[0])})
        assert int(full[0]) not in excluded

    def test_k_larger_than_database_returns_all(self, mbrs):
        query = Rectangle.from_center_extent([0.5, 0.5], 0.02)
        assert knn_candidates(mbrs, query, mbrs.shape[0] + 5).shape[0] == mbrs.shape[0]

    def test_invalid_k_raises(self, mbrs, rtree):
        query = Rectangle.from_center_extent([0.5, 0.5], 0.02)
        with pytest.raises(ValueError):
            knn_candidates(mbrs, query, 0)
        with pytest.raises(ValueError):
            rtree.knn_candidates(query, 0)


class TestScanHelpers:
    def test_min_dist_order_sorted(self, mbrs):
        query = Rectangle.from_center_extent([0.5, 0.5], 0.01)
        order = min_dist_order(mbrs, query)
        dists = min_dist_arrays(mbrs, query.to_array())
        assert np.all(np.diff(dists[order]) >= -1e-12)

    def test_range_candidates_contains_query_region_objects(self, mbrs):
        region = Rectangle.from_bounds([0.4, 0.4], [0.6, 0.6])
        hits = range_candidates(mbrs, region)
        centers = 0.5 * (mbrs[..., 0] + mbrs[..., 1])
        inside = np.flatnonzero(
            np.all((centers >= [0.4, 0.4]) & (centers <= [0.6, 0.6]), axis=1)
        )
        assert set(inside) <= set(hits)
