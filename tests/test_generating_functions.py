"""Unit tests for (uncertain) generating functions."""

import itertools

import numpy as np
import pytest

from repro.core import (
    UncertainGeneratingFunction,
    poisson_binomial_pmf,
    regular_gf_bounds,
)


def brute_force_pmf(probs):
    """Exact PMF of a Bernoulli sum by enumerating all outcome combinations."""
    n = len(probs)
    pmf = np.zeros(n + 1)
    for outcome in itertools.product([0, 1], repeat=n):
        prob = 1.0
        for x, p in zip(outcome, probs):
            prob *= p if x else (1.0 - p)
        pmf[sum(outcome)] += prob
    return pmf


class TestPoissonBinomial:
    def test_empty_input(self):
        np.testing.assert_allclose(poisson_binomial_pmf([]), [1.0])

    def test_single_variable(self):
        np.testing.assert_allclose(poisson_binomial_pmf([0.3]), [0.7, 0.3])

    def test_paper_example_2(self):
        """Example 2 of the paper: P(X1)=0.2, P(X2)=0.1, P(X3)=0.3.

        The paper reports the x^1 coefficient of F3 as 0.418, which is an
        arithmetic slip: 0.26 * 0.7 + 0.72 * 0.3 = 0.398 (and the brute-force
        enumeration agrees).  We assert the correct values.
        """
        pmf = poisson_binomial_pmf([0.2, 0.1, 0.3])
        np.testing.assert_allclose(pmf, brute_force_pmf([0.2, 0.1, 0.3]), atol=1e-12)
        assert pmf[0] == pytest.approx(0.504)
        assert pmf[1] == pytest.approx(0.398)
        assert pmf[0] + pmf[1] == pytest.approx(0.902)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            probs = rng.uniform(0, 1, size=6)
            np.testing.assert_allclose(
                poisson_binomial_pmf(probs), brute_force_pmf(probs), atol=1e-12
            )

    def test_sums_to_one(self):
        rng = np.random.default_rng(1)
        probs = rng.uniform(0, 1, size=25)
        assert poisson_binomial_pmf(probs).sum() == pytest.approx(1.0)

    def test_all_zero_probabilities(self):
        pmf = poisson_binomial_pmf([0.0, 0.0, 0.0])
        np.testing.assert_allclose(pmf, [1.0, 0.0, 0.0, 0.0])

    def test_all_one_probabilities(self):
        pmf = poisson_binomial_pmf([1.0, 1.0])
        np.testing.assert_allclose(pmf, [0.0, 0.0, 1.0])

    def test_truncation_preserves_prefix(self):
        rng = np.random.default_rng(2)
        probs = rng.uniform(0, 1, size=12)
        full = poisson_binomial_pmf(probs)
        truncated = poisson_binomial_pmf(probs, k_cap=3)
        np.testing.assert_allclose(truncated[:4], full[:4], atol=1e-12)
        assert truncated[-1] == pytest.approx(full[4:].sum())

    def test_truncation_mass_conserved(self):
        probs = [0.5] * 10
        assert poisson_binomial_pmf(probs, k_cap=2).sum() == pytest.approx(1.0)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([1.5])

    def test_negative_k_cap_raises(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([0.5], k_cap=-1)


class TestUncertainGeneratingFunction:
    def test_paper_example_3(self):
        """Example 3: bounds [0.2, 0.5] and [0.6, 0.8]."""
        ugf = UncertainGeneratingFunction([0.2, 0.6], [0.5, 0.8])
        assert ugf.count_lower_bound(2) == pytest.approx(0.12)
        assert ugf.count_upper_bound(2) == pytest.approx(0.40)
        assert ugf.count_lower_bound(1) == pytest.approx(0.34)
        assert ugf.count_upper_bound(1) == pytest.approx(0.78)
        assert ugf.count_lower_bound(0) == pytest.approx(0.10)
        assert ugf.count_upper_bound(0) == pytest.approx(0.32)

    def test_total_mass_is_one(self):
        rng = np.random.default_rng(3)
        lower = rng.uniform(0, 1, size=15)
        upper = np.minimum(1.0, lower + rng.uniform(0, 0.3, size=15))
        ugf = UncertainGeneratingFunction(lower, upper)
        assert ugf.total_mass() == pytest.approx(1.0)

    def test_degenerates_to_regular_gf(self):
        rng = np.random.default_rng(4)
        probs = rng.uniform(0, 1, size=10)
        ugf = UncertainGeneratingFunction.from_exact(probs)
        lower, upper = ugf.pmf_bounds()
        exact = poisson_binomial_pmf(probs)
        np.testing.assert_allclose(lower, exact, atol=1e-12)
        np.testing.assert_allclose(upper, exact, atol=1e-12)

    def test_bounds_bracket_every_consistent_probability_vector(self):
        """Any true probabilities inside the per-variable bounds must be bracketed."""
        rng = np.random.default_rng(5)
        lower = rng.uniform(0, 0.6, size=7)
        upper = np.minimum(1.0, lower + rng.uniform(0, 0.4, size=7))
        ugf = UncertainGeneratingFunction(lower, upper)
        pmf_lower, pmf_upper = ugf.pmf_bounds()
        for _ in range(25):
            truth = rng.uniform(lower, upper)
            exact = poisson_binomial_pmf(truth)
            assert np.all(pmf_lower <= exact + 1e-9)
            assert np.all(pmf_upper >= exact - 1e-9)

    def test_cdf_bounds_bracket_exact_cdf(self):
        rng = np.random.default_rng(6)
        lower = rng.uniform(0, 0.5, size=6)
        upper = np.minimum(1.0, lower + rng.uniform(0, 0.5, size=6))
        ugf = UncertainGeneratingFunction(lower, upper)
        truth = rng.uniform(lower, upper)
        exact = np.cumsum(poisson_binomial_pmf(truth))
        for k in range(6):
            assert ugf.cdf_lower_bound(k) <= exact[k] + 1e-9
            assert ugf.cdf_upper_bound(k) >= exact[k] - 1e-9

    def test_cdf_bounds_monotone_in_k(self):
        ugf = UncertainGeneratingFunction([0.2, 0.4, 0.6], [0.5, 0.7, 0.9])
        lower = [ugf.cdf_lower_bound(k) for k in range(4)]
        upper = [ugf.cdf_upper_bound(k) for k in range(4)]
        assert lower == sorted(lower)
        assert upper == sorted(upper)
        assert upper[3] == pytest.approx(1.0)

    def test_lower_bounds_never_exceed_upper_bounds(self):
        rng = np.random.default_rng(7)
        lower = rng.uniform(0, 1, size=9)
        upper = np.minimum(1.0, lower + rng.uniform(0, 0.5, size=9))
        ugf = UncertainGeneratingFunction(lower, upper)
        pmf_lower, pmf_upper = ugf.pmf_bounds()
        assert np.all(pmf_lower <= pmf_upper + 1e-12)

    def test_zero_variables(self):
        ugf = UncertainGeneratingFunction([], [])
        assert ugf.count_lower_bound(0) == pytest.approx(1.0)
        assert ugf.count_upper_bound(0) == pytest.approx(1.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            UncertainGeneratingFunction([0.5], [0.5, 0.6])

    def test_lower_above_upper_raises(self):
        with pytest.raises(ValueError):
            UncertainGeneratingFunction([0.7], [0.3])

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            UncertainGeneratingFunction([-0.1], [0.5])

    def test_negative_count_raises(self):
        ugf = UncertainGeneratingFunction([0.5], [0.5])
        with pytest.raises(ValueError):
            ugf.count_lower_bound(-1)


class TestTruncatedUGF:
    def test_truncated_bounds_match_full_bounds_below_cap(self):
        rng = np.random.default_rng(8)
        lower = rng.uniform(0, 0.6, size=20)
        upper = np.minimum(1.0, lower + rng.uniform(0, 0.4, size=20))
        full = UncertainGeneratingFunction(lower, upper)
        k = 4
        truncated = UncertainGeneratingFunction(lower, upper, k_cap=k)
        for count in range(k + 1):
            assert truncated.count_lower_bound(count) == pytest.approx(
                full.count_lower_bound(count)
            )
            assert truncated.count_upper_bound(count) == pytest.approx(
                full.count_upper_bound(count)
            )
            assert truncated.cdf_lower_bound(count) == pytest.approx(
                full.cdf_lower_bound(count)
            )
            assert truncated.cdf_upper_bound(count) == pytest.approx(
                full.cdf_upper_bound(count)
            )

    def test_truncated_query_above_cap_raises(self):
        ugf = UncertainGeneratingFunction([0.5] * 10, [0.6] * 10, k_cap=3)
        with pytest.raises(ValueError):
            ugf.count_lower_bound(4)

    def test_truncated_mass_preserved(self):
        ugf = UncertainGeneratingFunction([0.3] * 30, [0.5] * 30, k_cap=2)
        assert ugf.total_mass() == pytest.approx(1.0)

    def test_cap_larger_than_n_is_harmless(self):
        lower, upper = [0.2, 0.4], [0.3, 0.9]
        a = UncertainGeneratingFunction(lower, upper)
        b = UncertainGeneratingFunction(lower, upper, k_cap=10)
        for k in range(3):
            assert a.count_lower_bound(k) == pytest.approx(b.count_lower_bound(k))
            assert a.count_upper_bound(k) == pytest.approx(b.count_upper_bound(k))


class TestRegularGFBounds:
    def test_bracket_consistent_probability_vectors(self):
        rng = np.random.default_rng(9)
        lower = rng.uniform(0, 0.5, size=8)
        upper = np.minimum(1.0, lower + rng.uniform(0, 0.5, size=8))
        pmf_lower, pmf_upper = regular_gf_bounds(lower, upper)
        for _ in range(20):
            truth = rng.uniform(lower, upper)
            exact = poisson_binomial_pmf(truth)
            assert np.all(pmf_lower <= exact + 1e-9)
            assert np.all(pmf_upper >= exact - 1e-9)

    def test_ugf_never_looser_than_regular_gf(self):
        """The UGF bounds are at least as tight as the two-regular-GF bounds."""
        rng = np.random.default_rng(10)
        for _ in range(25):
            n = rng.integers(2, 12)
            lower = rng.uniform(0, 1, size=n)
            upper = np.minimum(1.0, lower + rng.uniform(0, 0.6, size=n))
            ugf_lower, ugf_upper = UncertainGeneratingFunction(lower, upper).pmf_bounds()
            reg_lower, reg_upper = regular_gf_bounds(lower, upper)
            assert np.all(ugf_lower >= reg_lower - 1e-9)
            assert np.all(ugf_upper <= reg_upper + 1e-9)

    def test_exact_probabilities_give_exact_pmf(self):
        probs = [0.2, 0.5, 0.9]
        pmf_lower, pmf_upper = regular_gf_bounds(probs, probs)
        exact = poisson_binomial_pmf(probs)
        np.testing.assert_allclose(pmf_lower, exact, atol=1e-12)
        np.testing.assert_allclose(pmf_upper, exact, atol=1e-12)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            regular_gf_bounds([0.5], [0.5, 0.6])
