"""Unit tests for the spatial domination criteria (Corollary 1)."""

import math

import numpy as np
import pytest

from repro.geometry import (
    Rectangle,
    dominates,
    dominates_minmax,
    dominates_optimal,
    domination_bulk,
    rectangles_to_array,
)


def _sampled_domination_holds(a, b, r, rng, samples=400, p=2.0):
    """Check by sampling that every (a, b, r) triple satisfies dist(a,r) < dist(b,r)."""
    pa = rng.uniform(a.lows, a.highs, size=(samples, a.dimensions))
    pb = rng.uniform(b.lows, b.highs, size=(samples, b.dimensions))
    pr = rng.uniform(r.lows, r.highs, size=(samples, r.dimensions))
    da = np.sum(np.abs(pa[:, None, :] - pr[None, :, :]) ** p, axis=-1)
    db = np.sum(np.abs(pb[:, None, :] - pr[None, :, :]) ** p, axis=-1)
    # compare every a-sample against every b-sample for each r-sample
    return bool(np.all(da[:, None, :] < db[None, :, :]))


class TestClearCases:
    def setup_method(self):
        self.reference = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        self.near = Rectangle.from_bounds([1.5, 0.0], [2.0, 1.0])
        self.far = Rectangle.from_bounds([8.0, 0.0], [9.0, 1.0])

    def test_near_dominates_far(self):
        assert dominates_optimal(self.near, self.far, self.reference)
        assert dominates_minmax(self.near, self.far, self.reference)

    def test_far_does_not_dominate_near(self):
        assert not dominates_optimal(self.far, self.near, self.reference)
        assert not dominates_minmax(self.far, self.near, self.reference)

    def test_object_does_not_dominate_itself(self):
        assert not dominates_optimal(self.near, self.near, self.reference)
        assert not dominates_minmax(self.near, self.near, self.reference)

    def test_overlapping_objects_do_not_dominate(self):
        overlapping = Rectangle.from_bounds([1.7, 0.0], [2.5, 1.0])
        assert not dominates_optimal(self.near, overlapping, self.reference)

    def test_points_domination_is_distance_comparison(self):
        r = Rectangle.from_point([0.0, 0.0])
        a = Rectangle.from_point([1.0, 0.0])
        b = Rectangle.from_point([2.0, 0.0])
        assert dominates_optimal(a, b, r)
        assert not dominates_optimal(b, a, r)


class TestOptimalVsMinMax:
    def test_optimal_detects_case_minmax_misses(self):
        """The classical Figure-1-style configuration: MinMax fails, optimal wins.

        A and B lie on opposite sides of R; the MaxDist from A to R exceeds
        the MinDist from B to R, yet for every fixed position of R, A is
        closer — the dependency MinMax ignores.
        """
        r = Rectangle.from_bounds([0.0, 0.0], [4.0, 1.0])
        a = Rectangle.from_bounds([4.5, 0.0], [5.0, 1.0])  # right of R, adjacent
        b = Rectangle.from_bounds([6.0, 0.0], [7.0, 1.0])  # farther right, but close
        # the min/max criterion fails because MaxDist(A, R) > MinDist(B, R)
        assert not dominates_minmax(a, b, r)
        assert dominates_optimal(a, b, r)

    def test_minmax_implies_optimal(self):
        """Whenever the (sufficient) MinMax criterion fires, so must the optimal one."""
        rng = np.random.default_rng(7)
        hits = 0
        for _ in range(300):
            boxes = [
                Rectangle.from_center_extent(rng.uniform(0, 1, 2), rng.uniform(0.01, 0.3, 2))
                for _ in range(3)
            ]
            a, b, r = boxes
            if dominates_minmax(a, b, r):
                hits += 1
                assert dominates_optimal(a, b, r)
        assert hits > 0  # the test exercised the implication at least once

    def test_optimal_claims_are_sound(self):
        """When the optimal criterion fires, sampling finds no counterexample."""
        rng = np.random.default_rng(11)
        fired = 0
        for _ in range(200):
            a = Rectangle.from_center_extent(rng.uniform(0, 1, 2), rng.uniform(0.01, 0.2, 2))
            b = Rectangle.from_center_extent(rng.uniform(0, 1, 2), rng.uniform(0.01, 0.2, 2))
            r = Rectangle.from_center_extent(rng.uniform(0, 1, 2), rng.uniform(0.01, 0.2, 2))
            if dominates_optimal(a, b, r):
                fired += 1
                assert _sampled_domination_holds(a, b, r, rng, samples=60)
        assert fired > 0

    def test_mutual_domination_impossible(self):
        rng = np.random.default_rng(13)
        for _ in range(200):
            a = Rectangle.from_center_extent(rng.uniform(0, 1, 2), rng.uniform(0.01, 0.3, 2))
            b = Rectangle.from_center_extent(rng.uniform(0, 1, 2), rng.uniform(0.01, 0.3, 2))
            r = Rectangle.from_center_extent(rng.uniform(0, 1, 2), rng.uniform(0.01, 0.3, 2))
            assert not (dominates_optimal(a, b, r) and dominates_optimal(b, a, r))


class TestDispatch:
    def test_dominates_dispatch(self):
        r = Rectangle.from_point([0.0, 0.0])
        a = Rectangle.from_point([1.0, 0.0])
        b = Rectangle.from_point([2.0, 0.0])
        assert dominates(a, b, r, criterion="optimal")
        assert dominates(a, b, r, criterion="minmax")

    def test_unknown_criterion_raises(self):
        r = Rectangle.from_point([0.0, 0.0])
        with pytest.raises(ValueError):
            dominates(r, r, r, criterion="bogus")

    def test_optimal_rejects_infinite_p(self):
        r = Rectangle.from_point([0.0, 0.0])
        with pytest.raises(ValueError):
            dominates_optimal(r, r, r, p=math.inf)

    def test_optimal_rejects_invalid_p(self):
        r = Rectangle.from_point([0.0, 0.0])
        with pytest.raises(ValueError):
            dominates_optimal(r, r, r, p=0.3)


class TestManhattanNorm:
    def test_domination_under_l1(self):
        r = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])
        a = Rectangle.from_bounds([1.5, 0.0], [2.0, 1.0])
        b = Rectangle.from_bounds([6.0, 0.0], [7.0, 1.0])
        assert dominates_optimal(a, b, r, p=1.0)
        assert not dominates_optimal(b, a, r, p=1.0)


class TestVectorisedBulk:
    def test_bulk_matches_scalar(self):
        rng = np.random.default_rng(5)
        candidates = [
            Rectangle.from_center_extent(rng.uniform(0, 1, 2), rng.uniform(0.01, 0.3, 2))
            for _ in range(50)
        ]
        b = Rectangle.from_center_extent([0.5, 0.5], [0.2, 0.2])
        r = Rectangle.from_center_extent([0.1, 0.8], [0.15, 0.15])
        arr = rectangles_to_array(candidates)
        for criterion in ("optimal", "minmax"):
            bulk = domination_bulk(arr, b.to_array(), r.to_array(), criterion=criterion)
            scalar = np.array(
                [dominates(c, b, r, criterion=criterion) for c in candidates]
            )
            np.testing.assert_array_equal(bulk, scalar)

    def test_bulk_swapped_arguments_match_scalar(self):
        rng = np.random.default_rng(9)
        candidates = [
            Rectangle.from_center_extent(rng.uniform(0, 1, 2), rng.uniform(0.01, 0.3, 2))
            for _ in range(30)
        ]
        b = Rectangle.from_center_extent([0.4, 0.6], [0.2, 0.2])
        r = Rectangle.from_center_extent([0.9, 0.1], [0.1, 0.1])
        arr = rectangles_to_array(candidates)
        bulk = domination_bulk(b.to_array(), arr, r.to_array())
        scalar = np.array([dominates_optimal(b, c, r) for c in candidates])
        np.testing.assert_array_equal(bulk, scalar)

    def test_bulk_rejects_infinite_p(self):
        arr = np.zeros((1, 2, 2))
        with pytest.raises(ValueError):
            domination_bulk(arr, arr[0], arr[0], p=math.inf)

    def test_bulk_output_shape(self):
        arr = np.zeros((7, 3, 2))
        arr[..., 1] = 1.0
        out = domination_bulk(arr, arr[0], arr[0])
        assert out.shape == (7,)
        assert out.dtype == bool
