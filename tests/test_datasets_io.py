"""Tests for the JSON persistence of uncertain databases."""

import json

import numpy as np
import pytest

from repro.datasets import (
    load_database,
    object_from_dict,
    object_to_dict,
    save_database,
    uniform_rectangle_database,
)
from repro.geometry import Rectangle
from repro.uncertain import (
    BoxUniformObject,
    DiscreteObject,
    HistogramObject,
    MixtureObject,
    PointObject,
    TruncatedGaussianObject,
    UncertainDatabase,
)


def _mixed_database():
    box = BoxUniformObject(
        Rectangle.from_bounds([0.1, 0.2], [0.3, 0.4]),
        label="box",
        existence_probability=0.8,
    )
    gauss = TruncatedGaussianObject([0.5, 0.5], [0.01, 0.02], label="gauss")
    disc = DiscreteObject(
        [[0.7, 0.7], [0.72, 0.69]], [0.25, 0.75], label="disc"
    )
    hist = HistogramObject(
        edges=[[0.0, 0.1, 0.2], [0.5, 0.6]],
        masses=[[1.0, 3.0], [1.0]],
        label="hist",
    )
    mixture = MixtureObject([box, disc], [0.4, 0.6], label="mixture")
    point = PointObject([0.9, 0.9], label="point")
    return UncertainDatabase([box, gauss, disc, hist, mixture, point])


def _assert_objects_equivalent(original, restored, rng):
    assert type(restored).__name__ in {type(original).__name__, "DiscreteObject"}
    assert restored.label == original.label
    assert restored.existence_probability == pytest.approx(
        original.existence_probability
    )
    np.testing.assert_allclose(restored.mbr.to_array(), original.mbr.to_array())
    np.testing.assert_allclose(restored.mean(), original.mean(), atol=1e-9)
    # the mass of a random region is preserved
    region = Rectangle.from_bounds(
        original.mbr.lows - 0.01, original.mbr.center + 0.005
    )
    assert restored.mass_in(region) == pytest.approx(original.mass_in(region), abs=1e-9)


class TestRoundTrip:
    def test_every_object_type_round_trips(self, tmp_path, rng):
        database = _mixed_database()
        path = tmp_path / "db.json"
        save_database(database, path)
        restored = load_database(path)
        assert len(restored) == len(database)
        for original, back in zip(database, restored):
            _assert_objects_equivalent(original, back, rng)

    def test_generated_database_round_trip(self, tmp_path):
        database = uniform_rectangle_database(50, max_extent=0.01, seed=3)
        path = tmp_path / "synthetic.json"
        save_database(database, path)
        restored = load_database(path)
        np.testing.assert_allclose(restored.mbrs(), database.mbrs())

    def test_object_dict_round_trip_without_files(self):
        obj = TruncatedGaussianObject([1.0, 2.0], [0.1, 0.2], label="g")
        restored = object_from_dict(object_to_dict(obj))
        np.testing.assert_allclose(restored.mbr.to_array(), obj.mbr.to_array())

    def test_file_is_valid_json_with_version(self, tmp_path):
        database = _mixed_database()
        path = tmp_path / "db.json"
        save_database(database, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert payload["dimensions"] == 2
        assert len(payload["objects"]) == len(database)


class TestErrorHandling:
    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            object_from_dict({"type": "bogus"})

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "objects": []}))
        with pytest.raises(ValueError):
            load_database(path)

    def test_empty_database_raises(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"format_version": 1, "objects": []}))
        with pytest.raises(ValueError):
            load_database(path)

    def test_unserialisable_object_raises(self):
        class Custom(BoxUniformObject):
            pass

        custom = Custom(Rectangle.from_bounds([0.0], [1.0]))
        # subclasses of supported types serialise as their base behaviour
        assert object_to_dict(custom)["type"] == "box_uniform"
