"""Tests for the adaptive candidate-refinement heuristic of IDCA.

Adaptive refinement (the paper's "future work" heuristic) only keeps splitting
influence objects whose domination-probability bounds are still wide.  The
tests verify that correctness is unaffected (bounds still bracket the exact
distribution) and that the heuristic does not refine objects beyond need.
"""

import numpy as np
import pytest

from repro.baselines import exact_domination_count_pmf
from repro.core import IDCA, MaxIterations
from repro.datasets import (
    discrete_sample_database,
    random_reference_object,
    target_by_mindist_rank,
    uniform_rectangle_database,
)
from repro.uncertain import DiscreteObject


class TestAdaptiveCorrectness:
    @pytest.mark.parametrize("seed", [3, 19])
    def test_bounds_still_bracket_oracle(self, seed):
        database = discrete_sample_database(
            num_objects=9, samples_per_object=5, max_extent=0.35, seed=seed
        )
        rng = np.random.default_rng(seed)
        reference = DiscreteObject(rng.uniform(0, 1, size=(4, 2)), label="ref")
        target = 2
        exact = exact_domination_count_pmf(
            database, database[target], reference, exclude_indices=[target]
        )
        idca = IDCA(
            database,
            adaptive_candidate_refinement=True,
            adaptive_width_threshold=0.05,
            max_target_depth=4,
            max_reference_depth=4,
        )
        result = idca.domination_count(
            target, reference, stop=MaxIterations(8), max_iterations=8
        )
        assert np.all(result.bounds.lower <= exact + 1e-9)
        assert np.all(result.bounds.upper >= exact - 1e-9)

    def test_uncertainty_still_decreases(self):
        database = uniform_rectangle_database(200, max_extent=0.02, seed=5)
        reference = random_reference_object(extent=0.02, seed=6)
        target = target_by_mindist_rank(database, reference, rank=8)
        idca = IDCA(database, adaptive_candidate_refinement=True)
        result = idca.domination_count(
            target, reference, stop=MaxIterations(5), max_iterations=5
        )
        uncertainties = [stat.uncertainty for stat in result.iterations]
        for earlier, later in zip(uncertainties, uncertainties[1:]):
            assert later <= earlier + 1e-9

    def test_invalid_threshold_raises(self):
        database = uniform_rectangle_database(20, max_extent=0.02, seed=7)
        with pytest.raises(ValueError):
            IDCA(database, adaptive_width_threshold=-0.1)


class TestAdaptiveEfficiency:
    def test_adaptive_touches_fewer_partitions(self):
        """With a generous width budget the adaptive variant stops splitting
        resolved candidates, so the maximum partition count per candidate stays
        below the uniform variant's."""
        database = uniform_rectangle_database(400, max_extent=0.03, seed=8)
        reference = random_reference_object(extent=0.03, seed=9)
        target = target_by_mindist_rank(database, reference, rank=10)
        iterations = 6
        uniform = IDCA(database).domination_count(
            target, reference, stop=MaxIterations(iterations), max_iterations=iterations
        )
        adaptive = IDCA(
            database,
            adaptive_candidate_refinement=True,
            adaptive_width_threshold=0.25,
        ).domination_count(
            target, reference, stop=MaxIterations(iterations), max_iterations=iterations
        )
        assert (
            adaptive.iterations[-1].candidate_partitions
            <= uniform.iterations[-1].candidate_partitions
        )
        # quality is allowed to be marginally worse, but stays in the same ballpark
        assert adaptive.bounds.uncertainty() <= uniform.bounds.uncertainty() + 1.0

    def test_adaptive_with_zero_threshold_matches_uniform(self):
        """A zero width budget makes the adaptive schedule identical to the
        uniform one (every unresolved candidate is refined every iteration)."""
        database = uniform_rectangle_database(150, max_extent=0.03, seed=10)
        reference = random_reference_object(extent=0.03, seed=11)
        target = target_by_mindist_rank(database, reference, rank=6)
        iterations = 4
        uniform = IDCA(database).domination_count(
            target, reference, stop=MaxIterations(iterations), max_iterations=iterations
        )
        adaptive = IDCA(
            database, adaptive_candidate_refinement=True, adaptive_width_threshold=0.0
        ).domination_count(
            target, reference, stop=MaxIterations(iterations), max_iterations=iterations
        )
        np.testing.assert_allclose(adaptive.bounds.lower, uniform.bounds.lower, atol=1e-9)
        np.testing.assert_allclose(adaptive.bounds.upper, uniform.bounds.upper, atol=1e-9)
