"""Unit tests for domination-count bounds (Section IV-D/E)."""

import numpy as np
import pytest

from repro.core import (
    DominationCountBounds,
    combine_weighted_bounds,
    domination_count_bounds,
    poisson_binomial_pmf,
)


class TestDominationCountBounds:
    def test_exact_constructor(self):
        pmf = np.array([0.2, 0.5, 0.3])
        bounds = DominationCountBounds.exact(pmf)
        assert bounds.is_exact()
        assert bounds.uncertainty() == pytest.approx(0.0)
        assert bounds.pmf_bounds(1) == (0.5, 0.5)

    def test_vacuous_constructor(self):
        bounds = DominationCountBounds.vacuous(4)
        assert len(bounds) == 4
        assert bounds.uncertainty() == pytest.approx(4.0)
        assert not bounds.is_exact()

    def test_vacuous_invalid_length_raises(self):
        with pytest.raises(ValueError):
            DominationCountBounds.vacuous(0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            DominationCountBounds(lower=np.array([0.5]), upper=np.array([0.4]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DominationCountBounds(lower=np.zeros(2), upper=np.ones(3))

    def test_pmf_bounds_out_of_range(self):
        bounds = DominationCountBounds.exact([1.0])
        assert bounds.pmf_bounds(5) == (0.0, 0.0)
        with pytest.raises(ValueError):
            bounds.pmf_bounds(-1)

    def test_cdf_bounds_exact_case(self):
        pmf = np.array([0.1, 0.2, 0.3, 0.4])
        bounds = DominationCountBounds.exact(pmf)
        cdf = np.cumsum(pmf)
        for k in range(4):
            lower, upper = bounds.cdf_bounds(k)
            assert lower == pytest.approx(cdf[k])
            assert upper == pytest.approx(cdf[k])

    def test_cdf_bounds_use_complementary_mass(self):
        # lower bounds all zero, but upper tail mass restricts the CDF too
        lower = np.zeros(3)
        upper = np.array([0.1, 0.2, 1.0])
        bounds = DominationCountBounds(lower, upper)
        cdf_lower, cdf_upper = bounds.cdf_bounds(1)
        assert cdf_lower == pytest.approx(0.0)
        assert cdf_upper == pytest.approx(0.3)
        cdf_lower, _ = bounds.cdf_bounds(0)
        # P(count <= 0) >= 1 - upper[1] - upper[2] = -0.2 -> clamped to 0
        assert cdf_lower == pytest.approx(0.0)

    def test_less_than_is_shifted_cdf(self):
        pmf = np.array([0.25, 0.25, 0.5])
        bounds = DominationCountBounds.exact(pmf)
        assert bounds.less_than(0) == (0.0, 0.0)
        assert bounds.less_than(1)[0] == pytest.approx(0.25)
        assert bounds.less_than(2)[0] == pytest.approx(0.5)
        assert bounds.less_than(3)[0] == pytest.approx(1.0)

    def test_expected_count_bounds_exact(self):
        pmf = np.array([0.2, 0.3, 0.5])
        bounds = DominationCountBounds.exact(pmf)
        lower, upper = bounds.expected_count_bounds()
        expected = 0.3 + 2 * 0.5
        assert lower == pytest.approx(expected)
        assert upper == pytest.approx(expected)

    def test_expected_count_bounds_reject_truncated(self):
        bounds = DominationCountBounds(np.zeros(3), np.ones(3), k_cap=1)
        with pytest.raises(ValueError):
            bounds.expected_count_bounds()

    def test_truncated_query_above_cap_raises(self):
        bounds = DominationCountBounds(np.zeros(5), np.ones(5), k_cap=2)
        with pytest.raises(ValueError):
            bounds.pmf_bounds(3)


class TestDominationCountBuilder:
    def test_exact_probabilities_give_poisson_binomial(self):
        probs = [0.3, 0.6, 0.9]
        bounds = domination_count_bounds(probs, probs)
        exact = poisson_binomial_pmf(probs)
        np.testing.assert_allclose(bounds.lower, exact, atol=1e-12)
        np.testing.assert_allclose(bounds.upper, exact, atol=1e-12)

    def test_complete_count_shifts_pmf(self):
        probs = [0.5]
        bounds = domination_count_bounds(probs, probs, complete_count=2)
        assert len(bounds) == 4
        np.testing.assert_allclose(bounds.lower, [0.0, 0.0, 0.5, 0.5])
        # counts below the complete-domination count are impossible
        assert bounds.upper[0] == 0.0
        assert bounds.upper[1] == 0.0

    def test_total_objects_pads_with_impossible_counts(self):
        bounds = domination_count_bounds([0.5], [0.5], complete_count=1, total_objects=5)
        assert len(bounds) == 6
        # counts above complete + influence are impossible
        np.testing.assert_allclose(bounds.upper[3:], 0.0)

    def test_no_influence_objects(self):
        bounds = domination_count_bounds([], [], complete_count=3, total_objects=5)
        assert bounds.pmf_bounds(3) == (1.0, 1.0)
        assert bounds.pmf_bounds(2) == (0.0, 0.0)
        assert bounds.pmf_bounds(4) == (0.0, 0.0)

    def test_bounds_bracket_truth_for_any_consistent_probabilities(self):
        rng = np.random.default_rng(0)
        lower = rng.uniform(0, 0.5, size=6)
        upper = np.minimum(1.0, lower + rng.uniform(0, 0.5, size=6))
        bounds = domination_count_bounds(lower, upper, complete_count=2)
        for _ in range(20):
            truth = rng.uniform(lower, upper)
            exact = poisson_binomial_pmf(truth)
            shifted = np.concatenate([np.zeros(2), exact])
            assert np.all(bounds.lower <= shifted + 1e-9)
            assert np.all(bounds.upper >= shifted - 1e-9)

    def test_k_cap_bounds_match_untruncated_below_cap(self):
        rng = np.random.default_rng(1)
        lower = rng.uniform(0, 0.5, size=10)
        upper = np.minimum(1.0, lower + rng.uniform(0, 0.5, size=10))
        full = domination_count_bounds(lower, upper, complete_count=1)
        k = 4
        capped = domination_count_bounds(lower, upper, complete_count=1, k_cap=k)
        for count in range(k + 1):
            assert capped.pmf_bounds(count)[0] == pytest.approx(full.pmf_bounds(count)[0])
            assert capped.pmf_bounds(count)[1] == pytest.approx(full.pmf_bounds(count)[1])
            assert capped.less_than(count)[0] == pytest.approx(full.less_than(count)[0])
            assert capped.less_than(count)[1] == pytest.approx(full.less_than(count)[1])

    def test_k_cap_below_complete_count(self):
        bounds = domination_count_bounds([0.5, 0.5], [0.7, 0.7], complete_count=4, k_cap=2)
        # every count up to the cap is impossible: fewer objects than the
        # complete-domination count can never dominate
        for count in range(3):
            assert bounds.pmf_bounds(count) == (0.0, 0.0)
        assert bounds.less_than(2) == (0.0, 0.0)

    def test_mismatched_probability_lengths_raise(self):
        with pytest.raises(ValueError):
            domination_count_bounds([0.5], [0.5, 0.6])

    def test_negative_complete_count_raises(self):
        with pytest.raises(ValueError):
            domination_count_bounds([0.5], [0.5], complete_count=-1)

    def test_too_small_total_objects_raises(self):
        with pytest.raises(ValueError):
            domination_count_bounds([0.5, 0.5], [0.5, 0.5], complete_count=2, total_objects=3)


class TestCombineWeightedBounds:
    def test_single_part_identity(self):
        part = DominationCountBounds.exact([0.4, 0.6])
        combined = combine_weighted_bounds([(1.0, part)])
        np.testing.assert_allclose(combined.lower, part.lower)
        np.testing.assert_allclose(combined.upper, part.upper)

    def test_two_exact_parts_mix(self):
        part_a = DominationCountBounds.exact([1.0, 0.0])
        part_b = DominationCountBounds.exact([0.0, 1.0])
        combined = combine_weighted_bounds([(0.25, part_a), (0.75, part_b)])
        np.testing.assert_allclose(combined.lower, [0.25, 0.75])
        np.testing.assert_allclose(combined.upper, [0.25, 0.75])

    def test_missing_weight_is_conservative(self):
        part = DominationCountBounds.exact([1.0, 0.0])
        combined = combine_weighted_bounds([(0.5, part)])
        # the unaccounted half of the worlds could have any count
        np.testing.assert_allclose(combined.lower, [0.5, 0.0])
        np.testing.assert_allclose(combined.upper, [1.0, 0.5])

    def test_empty_parts_raise(self):
        with pytest.raises(ValueError):
            combine_weighted_bounds([])

    def test_mismatched_lengths_raise(self):
        part_a = DominationCountBounds.exact([1.0, 0.0])
        part_b = DominationCountBounds.exact([1.0, 0.0, 0.0])
        with pytest.raises(ValueError):
            combine_weighted_bounds([(0.5, part_a), (0.5, part_b)])

    def test_excessive_weight_raises(self):
        part = DominationCountBounds.exact([1.0, 0.0])
        with pytest.raises(ValueError):
            combine_weighted_bounds([(0.8, part), (0.8, part)])

    def test_negative_weight_raises(self):
        part = DominationCountBounds.exact([1.0, 0.0])
        with pytest.raises(ValueError):
            combine_weighted_bounds([(-0.1, part), (1.1, part)])

    def test_weighted_bracket_property(self):
        """If each part brackets its conditional truth, the mix brackets the mixture."""
        rng = np.random.default_rng(2)
        truth_a = poisson_binomial_pmf(rng.uniform(0, 1, size=3))
        truth_b = poisson_binomial_pmf(rng.uniform(0, 1, size=3))
        part_a = DominationCountBounds(truth_a * 0.9, np.minimum(1.0, truth_a * 1.1 + 0.01))
        part_b = DominationCountBounds(truth_b * 0.9, np.minimum(1.0, truth_b * 1.1 + 0.01))
        combined = combine_weighted_bounds([(0.3, part_a), (0.7, part_b)])
        mixture = 0.3 * truth_a + 0.7 * truth_b
        assert np.all(combined.lower <= mixture + 1e-9)
        assert np.all(combined.upper >= mixture - 1e-9)
