"""Tests for the expected-distance kNN baseline and its semantic shortcomings."""

import numpy as np
import pytest

from repro.baselines import exact_domination_count_pmf, expected_distance_knn
from repro.datasets import uniform_rectangle_database
from repro.queries import probabilistic_knn_threshold
from repro.uncertain import DiscreteObject, PointObject, UncertainDatabase


class TestExpectedDistanceKNN:
    def test_certain_data_matches_classic_knn(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(30, 2))
        database = UncertainDatabase([PointObject(p) for p in points])
        query = PointObject([0.5, 0.5])
        result = expected_distance_knn(database, query, k=5)
        expected = list(np.argsort(np.linalg.norm(points - 0.5, axis=1))[:5])
        assert result.result_indices() == expected

    def test_distances_are_sorted(self):
        database = uniform_rectangle_database(40, max_extent=0.05, seed=1)
        query = PointObject([0.5, 0.5])
        result = expected_distance_knn(database, query, k=10)
        assert result.expected_distances == sorted(result.expected_distances)

    def test_query_index_excluded(self):
        database = uniform_rectangle_database(20, max_extent=0.05, seed=2)
        result = expected_distance_knn(database, 3, k=5)
        assert 3 not in result.result_indices()

    def test_k_larger_than_database(self):
        database = uniform_rectangle_database(5, max_extent=0.05, seed=3)
        query = PointObject([0.5, 0.5])
        result = expected_distance_knn(database, query, k=50)
        assert len(result.result_indices()) == 5

    def test_invalid_k_raises(self):
        database = uniform_rectangle_database(5, seed=4)
        with pytest.raises(ValueError):
            expected_distance_knn(database, PointObject([0.5, 0.5]), k=0)

    def test_violates_possible_world_semantics(self):
        """The motivating example: expected distances can rank an object first
        even though it is almost never the actual nearest neighbour.

        Object A sits at distance 1 with probability 0.9 and distance 10 with
        probability 0.1 (expected distance 1.9); objects B and C are certain at
        distance 2.  Expected distances rank A as the 1-NN, yet in the possible
        world semantics A is the nearest neighbour with probability 0.9 but the
        k=1 result under a high threshold still differs from the deterministic
        top-1 once A's bad world materialises; more strikingly, a certain
        object at distance 1.95 loses by expected distance against A although
        it is closer than A with probability 0.1 only... The concrete check
        below: with A = {1 (p=0.1), 10 (p=0.9)} (expected distance 9.1 > 2) the
        expected-distance ranking drops A although A is the true nearest
        neighbour in 10% of the worlds — the probabilistic query with a low
        threshold keeps it.
        """
        query = PointObject([0.0, 0.0])
        a = DiscreteObject([[1.0, 0.0], [10.0, 0.0]], [0.1, 0.9], label="A")
        b = PointObject([2.0, 0.0], label="B")
        c = PointObject([3.0, 0.0], label="C")
        database = UncertainDatabase([a, b, c])

        heuristic = expected_distance_knn(database, query, k=1)
        assert heuristic.result_indices() == [1]  # B wins on expected distance

        probabilistic = probabilistic_knn_threshold(
            database, query, k=1, tau=0.1, max_iterations=10
        )
        # under possible-world semantics A is a 1-NN with probability 10%,
        # which the threshold query reports and the heuristic cannot see
        assert 0 in probabilistic.result_indices()
        exact = exact_domination_count_pmf(database, a, query, exclude_indices=[0])
        assert exact[0] == pytest.approx(0.1)
