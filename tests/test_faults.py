"""Chaos suite: the service tier under injected faults.

Every test drives a real fault through ``repro.testing.faults`` — a
``SIGKILL`` delivered inside a worker, a lane wedged past its deadline, a
scribbled-on bounds-store record, a shared block unlinked mid-service —
and asserts the recovery contract of ``docs/architecture.md``'s failure
model: results stay **bit-identical to the serial path**, the service
stays usable, and nothing leaks (the autouse fixture fails any test that
orphans a child process or leaves a ``/dev/shm`` block linked).

The suite honours two environment switches the CI fault-injection job
matrixes over: ``REPRO_TEST_START_METHOD`` (``fork`` / ``spawn``) picks
the pool start method, and ``REPRO_DISABLE_SHARED_MEMORY=1`` runs the
whole suite on the pickle transport with the bounds store disabled (the
store-specific tests skip themselves there).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import (
    BatchReport,
    DeadlineExceeded,
    ExecutorConfig,
    KNNQuery,
    QueryEngine,
    QueryService,
    RangeQuery,
    RankingQuery,
    RKNNQuery,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    WorkerCrashError,
    WorkerPool,
    adaptive_chunk_size,
    bound_store_available,
    partition_requests,
)
from repro.engine.boundstore import BoundStoreClient, SharedBoundStore
from repro.testing.faults import (
    ANY_LANE,
    FaultPlan,
    assert_no_leaked_resources,
    corrupt_boundstore_record,
    drop_shared_block,
    inject_faults,
    kill_worker,
    snapshot_resources,
)

# The CI job matrixes the suite over start methods through this variable;
# locally it is unset and the platform default applies.
START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None

needs_shm = pytest.mark.skipif(
    not bound_store_available(),
    reason="shared-memory bounds store unavailable on this platform/config",
)


# --------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------- #
@pytest.fixture(autouse=True)
def no_leaked_resources():
    """Fail any test that orphans a worker or leaves a shm block linked."""
    before = snapshot_resources()
    yield
    assert_no_leaked_resources(before)


@pytest.fixture(scope="module")
def database():
    return uniform_rectangle_database(num_objects=30, max_extent=0.05, seed=3)


@pytest.fixture(scope="module")
def reference():
    return random_reference_object(extent=0.05, seed=4, label="query")


@pytest.fixture(scope="module")
def requests(reference):
    return [
        KNNQuery(reference, k=3, tau=0.5, max_iterations=4),
        KNNQuery(7, k=2, tau=0.3, max_iterations=4),
        RKNNQuery(reference, k=2, tau=0.5, max_iterations=3, candidate_indices=range(12)),
        RangeQuery(reference, epsilon=0.3, tau=0.5, max_depth=3),
        RankingQuery(reference, max_iterations=2, candidate_indices=range(10)),
        KNNQuery(reference, k=3, tau=0.5, max_iterations=4),  # a repeat
    ]


def _snapshot(results) -> list:
    snap = []
    for result in results:
        if hasattr(result, "matches"):
            snap.append(
                [
                    (m.index, m.probability_lower, m.probability_upper,
                     m.decision, m.iterations, m.sequence)
                    for bucket in (result.matches, result.undecided, result.rejected)
                    for m in bucket
                ]
                + [result.pruned]
            )
        elif hasattr(result, "ranking"):
            snap.append(
                [
                    (e.index, e.expected_rank_lower, e.expected_rank_upper, e.iterations)
                    for e in result.ranking
                ]
            )
        else:
            snap.append((list(map(float, result.lower)), list(map(float, result.upper))))
    return snap


@pytest.fixture(scope="module")
def serial_snapshot(database, requests):
    engine = QueryEngine(database)
    return _snapshot(engine.evaluate_many(requests))


def _service(database, workers=2, **kwargs):
    return QueryService(
        QueryEngine(database),
        ExecutorConfig(workers=workers, start_method=START_METHOD),
        **kwargs,
    )


# --------------------------------------------------------------------- #
# worker crash: supervision, respawn, re-driven chunks
# --------------------------------------------------------------------- #
def test_sigkill_mid_batch_recovers_bit_identical(database, requests, serial_snapshot):
    plan = FaultPlan(kill_lane=ANY_LANE, kill_after_chunks=0, kill_once=True)
    with inject_faults(plan):
        with _service(database, workers=2) as service:
            got = _snapshot(service.evaluate_many(requests))
            assert got == serial_snapshot
            report = service.last_batch_report
            assert report.worker_respawns >= 1
            assert report.chunk_retries >= 1
            # the respawned lane serves the next batch cleanly (kill fired once)
            again = _snapshot(service.evaluate_many(requests))
            assert again == serial_snapshot
            assert service.last_batch_report.worker_respawns == 0


def test_kill_between_batches_respawns_on_submit(database, requests, serial_snapshot):
    with _service(database, workers=2) as service:
        assert _snapshot(service.evaluate_many(requests)) == serial_snapshot
        for pid in service.worker_pids:
            kill_worker(pid)
        # the next batch transparently respawns the dead lanes
        assert _snapshot(service.evaluate_many(requests)) == serial_snapshot
        assert service.worker_respawns >= 1


def test_kill_later_chunk_still_recovers(database, requests, serial_snapshot):
    # the crash lands mid-stream (after the worker already completed work),
    # so recovery must re-drive only the lost chunk, not restart the batch
    plan = FaultPlan(kill_lane=ANY_LANE, kill_after_chunks=1, kill_once=True)
    with inject_faults(plan):
        with _service(database, workers=1) as service:
            # force several chunks through one lane so chunk #2 exists
            got = _snapshot(service.evaluate_many(requests, chunk_size=1))
            assert got == serial_snapshot
            assert service.last_batch_report.worker_respawns >= 1


def test_unsupervised_pool_surfaces_worker_crash(database, requests):
    engine = QueryEngine(database)
    plan = FaultPlan(kill_lane=ANY_LANE, kill_after_chunks=0, kill_once=True)
    with inject_faults(plan):
        with WorkerPool(
            engine, workers=1, start_method=START_METHOD, supervised=False
        ) as pool:
            chunks = partition_requests(requests, 1)
            with pytest.raises(WorkerCrashError):
                pool.run_chunks(requests, chunks)


def test_retry_budget_exhaustion_raises_worker_crash(database, requests):
    # a deterministic crasher (kill on *every* chunk start) burns through the
    # bounded retry budget and must surface as WorkerCrashError, not a hang
    engine = QueryEngine(database)
    plan = FaultPlan(kill_lane=ANY_LANE, kill_after_chunks=0, kill_once=False)
    with inject_faults(plan):
        with WorkerPool(
            engine,
            workers=1,
            start_method=START_METHOD,
            max_chunk_retries=2,
            retry_backoff=0.01,
        ) as pool:
            chunks = partition_requests(requests, 1)
            with pytest.raises(WorkerCrashError, match="died running chunk"):
                pool.run_chunks(requests, chunks)
            assert pool.respawns >= 2


# --------------------------------------------------------------------- #
# deadlines: cooperative worker checks and the hard watchdog
# --------------------------------------------------------------------- #
def test_watchdog_terminates_wedged_lane(database, requests, serial_snapshot):
    # a 60 s sleep cannot be interrupted cooperatively — only the parent's
    # watchdog can reclaim the lane, by SIGKILL + respawn.  One worker, so
    # the wedged lane is the only lane and no healthy worker can turn this
    # into a cooperative in-worker deadline instead.
    plan = FaultPlan(delay_lane=ANY_LANE, delay_seconds=60.0, delay_once=True)
    with inject_faults(plan):
        with _service(database, workers=1, watchdog_grace=0.5) as service:
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded, match="wedged"):
                service.evaluate_many(requests, deadline=0.5)
            # reclaimed within deadline + grace + slack, not after 60 s
            assert time.monotonic() - started < 30.0
            assert service.worker_respawns >= 1
            # the service survives the kill and serves the next batch
            assert _snapshot(service.evaluate_many(requests)) == serial_snapshot


def test_deadline_raises_cleanly_from_worker(database, requests):
    # a stall lets the *cooperative* deadline checks fire inside the
    # worker — no watchdog kill, no respawn.  The stall is 4x the deadline
    # (not a hair over it) so a loaded CI machine cannot finish the delayed
    # chunk before the deadline trips
    plan = FaultPlan(delay_lane=ANY_LANE, delay_seconds=2.0, delay_once=True)
    with inject_faults(plan):
        with _service(database, workers=1, watchdog_grace=30.0) as service:
            with pytest.raises(DeadlineExceeded):
                service.evaluate_many(requests, deadline=0.5)
            assert service.worker_respawns == 0


def test_deadline_expires_while_queued(database, requests):
    # one lane, held busy by a delayed batch: the second batch's deadline
    # passes before it ever reaches the pool and must fail fast in-queue.
    # The busy batch holds the lane ~6x longer than the queued deadline so
    # scheduling jitter cannot let the queued batch start in time
    plan = FaultPlan(delay_lane=ANY_LANE, delay_seconds=2.0, delay_once=True)
    with inject_faults(plan):
        with _service(database, workers=1) as service:
            busy = service.submit(requests)
            queued = service.submit(requests, deadline=0.3)
            with pytest.raises(DeadlineExceeded, match="queued"):
                queued.result(timeout=60)
            assert busy.result(timeout=60) is not None
            assert busy.exception() is None


def test_deadline_validation(database, requests):
    with _service(database, workers=1) as service:
        with pytest.raises(ValueError, match="deadline"):
            service.submit(requests, deadline=0)
        with pytest.raises(ValueError, match="deadline"):
            service.submit(requests, deadline=-1.5)


def test_batch_without_deadline_is_unaffected(database, requests, serial_snapshot):
    with _service(database, workers=2) as service:
        got = _snapshot(service.evaluate_many(requests, deadline=300.0))
        assert got == serial_snapshot


# --------------------------------------------------------------------- #
# bounds-store corruption and loss: graceful degradation
# --------------------------------------------------------------------- #
@needs_shm
def test_corrupt_record_demotes_reader_client():
    store = SharedBoundStore(num_slots=64, segment_bytes=4096, num_segments=2)
    try:
        writer = BoundStoreClient.from_handle(store.handle)
        key = b"0123456789abcdef"
        assert writer.put(key, np.array([0.1, 0.2]), np.array([0.3, 0.4]))
        clean = BoundStoreClient.from_handle(store.handle)
        assert clean.get(key) is not None
        assert corrupt_boundstore_record(store, max_records=None) >= 1
        reader = BoundStoreClient.from_handle(store.handle)
        # the validated read rejects the record instead of returning garbage
        assert reader.get(key) is None
        assert reader.corruptions == 1
        assert reader.demoted
        assert not reader.writable  # demotion also stops publishing
        assert reader.stats()["demoted"] is True
    finally:
        store.close()


@needs_shm
def test_corruption_mid_service_demotes_worker(database, requests, serial_snapshot):
    with _service(database, workers=2) as service:
        assert _snapshot(service.evaluate_many(requests)) == serial_snapshot
        # scribble over every record batch 1 published, then force fresh
        # workers (empty local caches) so batch 2 must consult the store
        assert corrupt_boundstore_record(service._bound_store, max_records=None) >= 1
        for pid in service.worker_pids:
            kill_worker(pid)
        got = _snapshot(service.evaluate_many(requests))
        assert got == serial_snapshot  # local memoisation fallback, same bits
        report = service.last_batch_report
        assert report.shared_corruptions >= 1
        assert report.degraded_workers >= 1


@needs_shm
def test_shm_drop_degrades_respawned_worker(database, requests, serial_snapshot):
    with _service(database, workers=2) as service:
        assert _snapshot(service.evaluate_many(requests)) == serial_snapshot
        # unlink the store's block, then kill the workers: the respawned
        # initializer cannot attach and must demote instead of crash-looping
        for pid in service.worker_pids:
            kill_worker(pid)
        assert drop_shared_block(service._bound_store.handle.shm_name)
        got = _snapshot(service.evaluate_many(requests))
        assert got == serial_snapshot
        report = service.last_batch_report
        assert report.worker_respawns >= 1
        assert report.degraded_workers >= 1


# --------------------------------------------------------------------- #
# claim leases under crashes: mid-protocol kills and lease steals
# --------------------------------------------------------------------- #
def _claim_and_hang(handle, key, claimed):
    """Child: acquire a claim, report it, then wedge until SIGKILLed."""
    client = BoundStoreClient.from_handle(handle)
    client.claim(key)
    claimed.set()
    time.sleep(120)


@needs_shm
def test_dead_claimants_claim_is_stolen_and_published_once():
    # the tentpole recovery path: a worker that published its *intent* to
    # compute a column and was then SIGKILLed mid-compute must not block
    # the key forever — a survivor steals the lease and publishes, once
    context = multiprocessing.get_context(START_METHOD)
    key = b"steal-me-0123456"
    store = SharedBoundStore(num_slots=256, num_segments=2, mp_context=context)
    try:
        claimed = context.Event()
        child = context.Process(
            target=_claim_and_hang, args=(store.handle, key, claimed)
        )
        child.start()
        assert claimed.wait(timeout=30.0)
        kill_worker(child.pid)
        survivor = BoundStoreClient.from_handle(store.handle)
        # the holder is dead: no lease wait, the claim is stolen outright
        assert survivor.claim(key) == "stolen"
        assert survivor.claim_steals == 1
        column = np.array([0.125, 0.625])
        assert survivor.put(key, column, column + 0.25)
        assert survivor.release(key)
        # exactly one column is readable, and a re-publish is a duplicate
        got = BoundStoreClient.from_handle(store.handle).get(key)
        np.testing.assert_array_equal(got[0], column)
        late = store.reader()
        assert not late.put(key, column, column + 0.25)
    finally:
        store.close()


@needs_shm
def test_sigkill_during_publish_recovers_bit_identical(
    database, requests, serial_snapshot
):
    # the crash lands *between* the record append and the index publish —
    # the worst spot: the segment cursor has advanced but no slot points at
    # the record.  The orphaned record must never surface (no corruption,
    # no demotion) and the re-driven chunk keeps results bit-identical.
    plan = FaultPlan(kill_during_publish=True)
    with inject_faults(plan):
        with _service(database, workers=2) as service:
            got = _snapshot(service.evaluate_many(requests))
            assert got == serial_snapshot
            report = service.last_batch_report
            assert report.worker_respawns >= 1
            assert report.chunk_retries >= 1
            assert report.shared_corruptions == 0
            again = _snapshot(service.evaluate_many(requests))
            assert again == serial_snapshot
            follow_up = service.last_batch_report
            assert follow_up.worker_respawns == 0
            assert follow_up.degraded_workers == 0
            assert follow_up.shared_corruptions == 0


@needs_shm
def test_sigkill_after_claim_is_stolen_by_redriven_chunk(
    database, requests, serial_snapshot
):
    # the worker dies right after recording an in-flight claim: the chunk
    # is re-driven, the replacement worker finds the dead holder's claim
    # and steals it instead of waiting out the lease
    plan = FaultPlan(kill_after_claim=True)
    with inject_faults(plan):
        with _service(database, workers=2) as service:
            got = _snapshot(service.evaluate_many(requests))
            assert got == serial_snapshot
            report = service.last_batch_report
            assert report.worker_respawns >= 1
            assert report.claim_steals >= 1
            assert report.shared_corruptions == 0
            assert _snapshot(service.evaluate_many(requests)) == serial_snapshot


# --------------------------------------------------------------------- #
# bounds-store exhaustion (satellite): store-full and segment-exhausted
# --------------------------------------------------------------------- #
@needs_shm
def test_store_full_under_concurrent_publishers_degrades_to_local():
    # smallest legal store: fills after a handful of records
    store = SharedBoundStore(num_slots=64, segment_bytes=4096, num_segments=2)
    try:
        clients = [BoundStoreClient.from_handle(store.handle) for _ in range(2)]
        # small records: the two 4 KiB segments hold more columns than the
        # 64-slot index can address, so the *index* is what saturates and
        # the clients' full-latch must come from the probe-failure streak
        lower = np.array([0.25])
        upper = np.array([0.75])

        def publisher(client, salt):
            for i in range(300):
                client.put(b"%08d-%08d" % (salt, i), lower, upper)

        threads = [
            threading.Thread(target=publisher, args=(client, salt))
            for salt, client in enumerate(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # both publishers hit the wall and latched read-only…
        assert all(not client.writable for client in clients)
        assert sum(client.rejected for client in clients) > 0
        # …without corrupting what was published first
        published = sum(client.publishes for client in clients)
        assert published > 0
        reader = BoundStoreClient.from_handle(store.handle)
        served = sum(
            reader.get(b"%08d-%08d" % (salt, i)) is not None
            for salt in range(2)
            for i in range(300)
        )
        assert served == store.stats()["filled_slots"] > 0
        # lookups for never-published keys miss cleanly and are accounted
        assert reader.get(b"never-published!") is None
        assert reader.misses >= 1
        assert reader.corruptions == 0
    finally:
        store.close()


@needs_shm
def test_segment_exhaustion_makes_late_clients_read_only():
    store = SharedBoundStore(num_slots=64, segment_bytes=4096, num_segments=1)
    try:
        first = BoundStoreClient.from_handle(store.handle)
        second = BoundStoreClient.from_handle(store.handle)
        assert first.writable
        assert not second.writable  # no segment left: read-only, not an error
        key = b"fedcba9876543210"
        assert first.put(key, np.array([0.5]), np.array([0.6]))
        assert not second.put(key + b"!", np.array([0.5]), np.array([0.6]))
        assert second.rejected == 1
        assert second.get(key) is not None  # reads still work
        assert second.hits == 1
    finally:
        store.close()


@needs_shm
def test_service_survives_tiny_store_exhaustion(
    database, requests, serial_snapshot, monkeypatch
):
    # shrink the service's store to the legal minimum so real batches
    # exhaust it; results must not change — workers fall back to their
    # process-local memoisation and the misses are accounted
    import repro.engine.service as service_module

    original = service_module.SharedBoundStore

    def tiny_store(**kwargs):
        kwargs.update(num_slots=64, segment_bytes=4096)
        return original(**kwargs)

    monkeypatch.setattr(service_module, "SharedBoundStore", tiny_store)
    with _service(database, workers=2) as service:
        for _ in range(2):
            assert _snapshot(service.evaluate_many(requests)) == serial_snapshot
        report = service.last_batch_report
        assert report.degraded_workers == 0  # full ≠ corrupt: no demotion
        assert report.shared_corruptions == 0
        store_stats = service._bound_store.stats()
        assert store_stats["filled_slots"] <= 64


# --------------------------------------------------------------------- #
# admission control: bounded queue, fast rejection
# --------------------------------------------------------------------- #
def test_admission_bounds_pending_batches(database, requests, serial_snapshot):
    # the delay only has to outlast the few microseconds between the three
    # submits below, but a wide margin keeps the test calm under CI load
    plan = FaultPlan(delay_lane=ANY_LANE, delay_seconds=1.5, delay_once=True)
    with inject_faults(plan):
        with _service(database, workers=1, max_pending_batches=2) as service:
            first = service.submit(requests)
            second = service.submit(requests)
            with pytest.raises(ServiceOverloadedError, match="max_pending_batches"):
                service.submit(requests)
            # rejection is load shedding, not failure: in-flight work finishes
            assert _snapshot(first.result(timeout=120)) == serial_snapshot
            assert _snapshot(second.result(timeout=120)) == serial_snapshot
            # and capacity frees up once the queue drains
            assert service.pending_batches == 0
            assert _snapshot(service.submit(requests).result(timeout=120)) == (
                serial_snapshot
            )


def test_admission_bounds_pending_requests(database, requests):
    plan = FaultPlan(delay_lane=ANY_LANE, delay_seconds=1.5, delay_once=True)
    with inject_faults(plan):
        limit = len(requests) + 2  # one full batch fits, a second cannot
        with _service(database, workers=1, max_pending_requests=limit) as service:
            held = service.submit(requests)
            assert service.pending_requests == len(requests)
            with pytest.raises(ServiceOverloadedError, match="max_pending_requests"):
                service.submit(requests)
            held.result(timeout=120)
            assert service.pending_requests == 0


def test_admission_limit_validation(database):
    for kwargs in (
        {"max_pending_batches": 0},
        {"max_pending_batches": -1},
        {"max_pending_requests": 0},
        {"max_pending_requests": 2.5},
    ):
        with pytest.raises((ValueError, TypeError)):
            _service(database, workers=1, **kwargs).close()


def test_overload_error_is_a_service_error(database, requests):
    with _service(database, workers=1, max_pending_batches=1) as service:
        plan_free_probe = service.submit(requests[:1])
        try:
            service.submit(requests)
        except ServiceOverloadedError as error:
            assert isinstance(error, ServiceError)
            assert isinstance(error, RuntimeError)
        plan_free_probe.result(timeout=120)


# --------------------------------------------------------------------- #
# close() vs concurrent submit(): the satellite race fix
# --------------------------------------------------------------------- #
def test_submit_after_close_raises_typed_error(database, requests):
    service = _service(database, workers=1)
    service.close()
    with pytest.raises(ServiceClosedError, match="closed"):
        service.submit(requests)
    with pytest.raises(ServiceClosedError):
        service.probe_workers()


def test_abandoned_queue_resolves_with_closed_error(database, requests):
    plan = FaultPlan(delay_lane=ANY_LANE, delay_seconds=1.0, delay_once=True)
    with inject_faults(plan):
        service = _service(database, workers=1)
        running = service.submit(requests)
        queued = [service.submit(requests) for _ in range(2)]
        service.close(wait=False)
        assert service.closed
        # every handle resolves: nothing hangs, nothing silently vanishes
        for handle in queued:
            with pytest.raises(ServiceClosedError):
                handle.result(timeout=60)
        # the batch that was already running may finish or be abandoned,
        # but it must resolve either way
        try:
            running.result(timeout=60)
        except ServiceClosedError:
            pass


def test_close_races_concurrent_submitters(database, requests):
    service = _service(database, workers=2)
    outcomes: list[str] = []
    outcomes_lock = threading.Lock()
    start = threading.Barrier(5)
    # event-based sync instead of a wall-clock sleep: close() races in only
    # once at least one submit has demonstrably landed, on any machine speed
    first_submit_landed = threading.Event()

    def submitter():
        start.wait()
        for _ in range(6):
            try:
                handle = service.submit(requests[:2])
                first_submit_landed.set()
            except ServiceClosedError:
                with outcomes_lock:
                    outcomes.append("rejected")
                continue
            try:
                results = handle.result(timeout=60)
                assert len(results) == 2
                with outcomes_lock:
                    outcomes.append("completed")
            except ServiceClosedError:
                with outcomes_lock:
                    outcomes.append("abandoned")

    threads = [threading.Thread(target=submitter) for _ in range(4)]
    for thread in threads:
        thread.start()
    start.wait()
    assert first_submit_landed.wait(timeout=30.0)
    service.close(wait=False)
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive()
    # exactly 24 submit attempts, every one accounted for — the closed-check
    # and the enqueue are atomic, so no submit slipped into a dead queue
    assert len(outcomes) == 24
    assert service.closed
    assert service.pending_batches == 0


def test_close_remains_idempotent_under_faults(database, requests):
    plan = FaultPlan(kill_lane=ANY_LANE, kill_after_chunks=0, kill_once=True)
    with inject_faults(plan):
        service = _service(database, workers=2)
        service.evaluate_many(requests)
        service.close()
        service.close()
        assert service.closed


# --------------------------------------------------------------------- #
# adaptive sizing guard (satellite): zero-completed history is harmless
# --------------------------------------------------------------------- #
def test_adaptive_chunk_size_without_cost_history():
    assert adaptive_chunk_size(10, 2, None) is None
    assert adaptive_chunk_size(10, 2, 0.0) is None
    assert adaptive_chunk_size(10, 2, -1.0) is None
    assert adaptive_chunk_size(0, 2, 0.5) is None


def test_zero_completed_report_does_not_poison_adaptive_sizing(
    database, requests, serial_snapshot
):
    # a report with requests but no completed chunks (e.g. a batch that
    # failed before any chunk ran) must not divide-by-zero the next batch's
    # adaptive sizing — it simply carries no cost signal
    engine = QueryEngine(database)
    engine.last_batch_report = BatchReport(
        mode="process",
        workers=2,
        chunking="affinity",
        chunk_size=None,
        num_requests=len(requests),
        elapsed_seconds=0.0,
        chunks=(),
    )
    assert engine.last_batch_report.completed_requests == 0
    config = ExecutorConfig(
        mode="process", workers=2, chunk_size="adaptive", start_method=START_METHOD
    )
    got = _snapshot(engine.evaluate_many(requests, executor=config))
    assert got == serial_snapshot
