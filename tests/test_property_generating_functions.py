"""Property-based tests (hypothesis) for the (uncertain) generating functions."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    UncertainGeneratingFunction,
    poisson_binomial_pmf,
    regular_gf_bounds,
)

probability = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def probability_vectors(draw, max_size=12):
    return draw(st.lists(probability, min_size=1, max_size=max_size))


@st.composite
def bound_vectors(draw, max_size=12):
    """Pairs (lower, upper) with lower <= upper element-wise."""
    lower = draw(st.lists(probability, min_size=1, max_size=max_size))
    upper = [draw(st.floats(min_value=lo, max_value=1.0, allow_nan=False)) for lo in lower]
    return lower, upper


class TestPoissonBinomialProperties:
    @given(probability_vectors())
    def test_pmf_is_a_distribution(self, probs):
        pmf = poisson_binomial_pmf(probs)
        assert pmf.shape == (len(probs) + 1,)
        assert np.all(pmf >= -1e-12)
        assert abs(pmf.sum() - 1.0) < 1e-9

    @given(probability_vectors())
    def test_mean_matches_sum_of_probabilities(self, probs):
        pmf = poisson_binomial_pmf(probs)
        mean = float(np.arange(len(pmf)) @ pmf)
        assert abs(mean - sum(probs)) < 1e-9

    @given(probability_vectors(), st.integers(min_value=0, max_value=5))
    def test_truncation_keeps_prefix_and_mass(self, probs, k):
        full = poisson_binomial_pmf(probs)
        truncated = poisson_binomial_pmf(probs, k_cap=k)
        keep = min(k + 1, len(probs) + 1)
        np.testing.assert_allclose(truncated[:keep], full[:keep], atol=1e-9)
        assert abs(truncated.sum() - 1.0) < 1e-9

    @given(probability_vectors())
    def test_order_invariance(self, probs):
        shuffled = list(reversed(probs))
        np.testing.assert_allclose(
            poisson_binomial_pmf(probs), poisson_binomial_pmf(shuffled), atol=1e-9
        )


class TestUGFProperties:
    @settings(max_examples=150)
    @given(bound_vectors())
    def test_mass_and_ordering(self, bounds):
        lower, upper = bounds
        ugf = UncertainGeneratingFunction(lower, upper)
        assert abs(ugf.total_mass() - 1.0) < 1e-9
        pmf_lower, pmf_upper = ugf.pmf_bounds()
        assert np.all(pmf_lower <= pmf_upper + 1e-9)
        assert pmf_lower.sum() <= 1.0 + 1e-9
        assert pmf_upper.sum() >= 1.0 - 1e-9

    @settings(max_examples=100)
    @given(bound_vectors(), st.randoms(use_true_random=False))
    def test_bounds_bracket_consistent_truths(self, bounds, rnd):
        lower, upper = bounds
        ugf = UncertainGeneratingFunction(lower, upper)
        pmf_lower, pmf_upper = ugf.pmf_bounds()
        truth = [rnd.uniform(lo, up) for lo, up in zip(lower, upper)]
        exact = poisson_binomial_pmf(truth)
        assert np.all(pmf_lower <= exact + 1e-9)
        assert np.all(pmf_upper >= exact - 1e-9)

    @settings(max_examples=100)
    @given(bound_vectors())
    def test_cdf_bounds_monotone(self, bounds):
        lower, upper = bounds
        ugf = UncertainGeneratingFunction(lower, upper)
        n = len(lower)
        cdf_lower = [ugf.cdf_lower_bound(k) for k in range(n + 1)]
        cdf_upper = [ugf.cdf_upper_bound(k) for k in range(n + 1)]
        assert all(b >= a - 1e-9 for a, b in zip(cdf_lower, cdf_lower[1:]))
        assert all(b >= a - 1e-9 for a, b in zip(cdf_upper, cdf_upper[1:]))
        assert all(up >= lo - 1e-9 for lo, up in zip(cdf_lower, cdf_upper))
        assert abs(cdf_lower[n] - 1.0) < 1e-9
        assert abs(cdf_upper[n] - 1.0) < 1e-9

    @settings(max_examples=100)
    @given(bound_vectors(), st.integers(min_value=1, max_value=6))
    def test_truncated_bounds_match_full_below_cap(self, bounds, k):
        lower, upper = bounds
        full = UncertainGeneratingFunction(lower, upper)
        truncated = UncertainGeneratingFunction(lower, upper, k_cap=k)
        for count in range(min(k, len(lower)) + 1):
            assert abs(
                truncated.count_lower_bound(count) - full.count_lower_bound(count)
            ) < 1e-9
            assert abs(
                truncated.count_upper_bound(count) - full.count_upper_bound(count)
            ) < 1e-9

    @settings(max_examples=100)
    @given(bound_vectors())
    def test_ugf_at_least_as_tight_as_regular_gf(self, bounds):
        lower, upper = bounds
        ugf_lower, ugf_upper = UncertainGeneratingFunction(lower, upper).pmf_bounds()
        reg_lower, reg_upper = regular_gf_bounds(lower, upper)
        assert np.all(ugf_lower >= reg_lower - 1e-9)
        assert np.all(ugf_upper <= reg_upper + 1e-9)

    @settings(max_examples=100)
    @given(probability_vectors())
    def test_exact_bounds_recover_poisson_binomial(self, probs):
        ugf = UncertainGeneratingFunction.from_exact(probs)
        pmf_lower, pmf_upper = ugf.pmf_bounds()
        exact = poisson_binomial_pmf(probs)
        np.testing.assert_allclose(pmf_lower, exact, atol=1e-9)
        np.testing.assert_allclose(pmf_upper, exact, atol=1e-9)

    @settings(max_examples=60)
    @given(bound_vectors(max_size=8))
    def test_widening_bounds_never_tightens_result(self, bounds):
        """Widening the per-variable bounds can only widen the PMF bounds."""
        lower, upper = bounds
        tight_lower, tight_upper = UncertainGeneratingFunction(lower, upper).pmf_bounds()
        widened_lower = [max(0.0, lo - 0.1) for lo in lower]
        widened_upper = [min(1.0, up + 0.1) for up in upper]
        wide_lower, wide_upper = UncertainGeneratingFunction(
            widened_lower, widened_upper
        ).pmf_bounds()
        assert np.all(wide_lower <= tight_lower + 1e-9)
        assert np.all(wide_upper >= tight_upper - 1e-9)
