"""Parallel batch execution: determinism, partitioning, and reporting.

The contract under test (``repro/engine/executor.py``): for any worker
count, chunk size and chunking strategy, ``QueryEngine.evaluate_many``
returns results bit-identical to the serial shared-cache path — which is
itself pinned to the seed behaviour by ``tests/test_engine_equivalence.py``.
The heterogeneous batch here mirrors the seeded equivalence scenarios, so a
pass chains all the way back to the pre-engine implementations.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import (
    BatchReport,
    ExecutorConfig,
    InverseRankingQuery,
    KNNQuery,
    QueryEngine,
    RangeQuery,
    RankingQuery,
    RefinementContext,
    RefinementScheduler,
    RKNNQuery,
    partition_requests,
)


@pytest.fixture(scope="module")
def database():
    return uniform_rectangle_database(num_objects=30, max_extent=0.05, seed=3)


@pytest.fixture(scope="module")
def reference():
    return random_reference_object(extent=0.05, seed=4, label="query")


@pytest.fixture(scope="module")
def requests(reference):
    return [
        KNNQuery(reference, k=3, tau=0.5, max_iterations=4),
        KNNQuery(7, k=2, tau=0.3, max_iterations=4),
        RKNNQuery(reference, k=2, tau=0.5, max_iterations=3, candidate_indices=range(12)),
        RangeQuery(reference, epsilon=0.3, tau=0.5, max_depth=3),
        RankingQuery(reference, max_iterations=2, candidate_indices=range(10)),
        InverseRankingQuery(5, reference, max_iterations=3),
        KNNQuery(reference, k=3, tau=0.5, max_iterations=4),  # a repeat
    ]


def _snapshot(results) -> list:
    snap = []
    for result in results:
        if hasattr(result, "matches"):
            snap.append(
                [
                    (m.index, m.probability_lower, m.probability_upper,
                     m.decision, m.iterations, m.sequence)
                    for bucket in (result.matches, result.undecided, result.rejected)
                    for m in bucket
                ]
                + [result.pruned]
            )
        elif hasattr(result, "ranking"):
            snap.append(
                [
                    (e.index, e.expected_rank_lower, e.expected_rank_upper, e.iterations)
                    for e in result.ranking
                ]
            )
        else:
            snap.append((list(map(float, result.lower)), list(map(float, result.upper))))
    return snap


@pytest.fixture(scope="module")
def serial_snapshot(database, requests):
    engine = QueryEngine(database)
    return _snapshot(engine.evaluate_many(requests))


# --------------------------------------------------------------------- #
# determinism across workers / chunk sizes / strategies
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_results_identical_across_worker_counts(
    database, requests, serial_snapshot, workers
):
    engine = QueryEngine(database)
    config = ExecutorConfig(mode="process", workers=workers)
    got = _snapshot(engine.evaluate_many(requests, executor=config))
    assert got == serial_snapshot
    assert engine.last_batch_report.mode == "process"


@pytest.mark.parametrize("chunking", ["affinity", "contiguous"])
@pytest.mark.parametrize("chunk_size", [1, 3])
def test_results_identical_across_chunkings(
    database, requests, serial_snapshot, chunking, chunk_size
):
    engine = QueryEngine(database)
    config = ExecutorConfig(
        mode="process", workers=2, chunk_size=chunk_size, chunking=chunking
    )
    got = _snapshot(engine.evaluate_many(requests, executor=config))
    assert got == serial_snapshot


def test_serial_config_matches_no_config(database, requests, serial_snapshot):
    engine = QueryEngine(database)
    config = ExecutorConfig(mode="serial", workers=4)
    got = _snapshot(engine.evaluate_many(requests, executor=config))
    assert got == serial_snapshot
    assert engine.last_batch_report.mode == "serial"


def test_auto_mode_resolution_table(monkeypatch):
    # explicit workers are authoritative regardless of the machine
    assert ExecutorConfig(workers=1).resolve_mode(10) == "serial"
    assert ExecutorConfig(workers=4).resolve_mode(10) == "process"
    assert ExecutorConfig(workers=4).resolve_mode(1) == "serial"
    assert ExecutorConfig(mode="process").resolve_mode(1) == "process"
    assert ExecutorConfig(mode="serial", workers=8).resolve_mode(10) == "serial"
    # the adaptive default derives workers from the CPU count at resolution
    # time, so "auto" scales out on multi-core machines ...
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    assert ExecutorConfig().effective_workers == 8
    assert ExecutorConfig().resolve_mode(10) == "process"
    assert ExecutorConfig().resolve_mode(1) == "serial"  # nothing to parallelise
    assert ExecutorConfig(mode="serial").resolve_mode(10) == "serial"
    # ... and still means serial where there is only one core to scale to
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert ExecutorConfig().effective_workers == 1
    assert ExecutorConfig().resolve_mode(10) == "serial"
    monkeypatch.setattr(os, "cpu_count", lambda: None)  # cpu_count may fail
    assert ExecutorConfig().effective_workers == 1
    assert ExecutorConfig(workers=3).effective_workers == 3


def test_config_validation():
    with pytest.raises(ValueError, match="workers"):
        ExecutorConfig(workers=0)
    with pytest.raises(ValueError, match="workers"):
        ExecutorConfig(workers=-2)
    with pytest.raises(ValueError, match="workers"):
        ExecutorConfig(workers=2.5)
    with pytest.raises(ValueError, match="workers"):
        ExecutorConfig(workers=True)
    with pytest.raises(ValueError, match="chunk_size"):
        ExecutorConfig(chunk_size=0)
    with pytest.raises(ValueError, match="chunk_size"):
        ExecutorConfig(chunk_size=-1)
    with pytest.raises(ValueError, match="chunk_size"):
        ExecutorConfig(chunk_size=3.5)
    with pytest.raises(ValueError, match="chunk_size"):
        ExecutorConfig(chunk_size="dynamic")  # only "adaptive" is recognised
    with pytest.raises(ValueError, match="unknown execution mode"):
        ExecutorConfig(mode="threads")
    with pytest.raises(ValueError, match="unknown chunking strategy"):
        ExecutorConfig(chunking="random")
    with pytest.raises(ValueError, match="shared_bounds"):
        ExecutorConfig(shared_bounds="yes")
    # the accepted surface
    ExecutorConfig(workers=1, chunk_size=1)
    ExecutorConfig(chunk_size="adaptive")
    ExecutorConfig(shared_bounds=True)
    ExecutorConfig(shared_bounds=False)


# --------------------------------------------------------------------- #
# partitioning
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("chunking", ["affinity", "contiguous"])
@pytest.mark.parametrize("workers,chunk_size", [(1, None), (2, None), (4, 2), (3, 1)])
def test_partition_covers_every_request_once(requests, chunking, workers, chunk_size):
    chunks = partition_requests(requests, workers, chunk_size, chunking)
    flat = sorted(index for chunk in chunks for index in chunk)
    assert flat == list(range(len(requests)))
    if chunk_size is not None:
        assert all(len(chunk) <= chunk_size for chunk in chunks)


def test_affinity_groups_shared_queries(requests):
    chunks = partition_requests(requests, 4, None, "affinity")
    by_request = {index: chunk_id for chunk_id, chunk in enumerate(chunks) for index in chunk}
    # requests 0 and 6 are the same KNNQuery object-spec: same chunk
    assert by_request[0] == by_request[6]


def test_partition_empty_batch():
    assert partition_requests([], 4) == []


# --------------------------------------------------------------------- #
# worker-shippable state
# --------------------------------------------------------------------- #
def test_context_pickles_to_empty_caches(database):
    context = RefinementContext(database)
    context.tree_for(database[0])
    context.pair_bounds_cache[("some", "key")] = (1, 2)
    clone = pickle.loads(pickle.dumps(context))
    assert clone.axis_policy == context.axis_policy
    assert len(clone.tree_cache) == 0
    assert len(clone.pair_bounds_cache) == 0
    assert clone.pair_bounds_cache.hits == 0


def test_scheduler_pickles_to_configuration_only():
    scheduler = RefinementScheduler(global_iteration_budget=7)
    scheduler.steps_taken = 99
    clone = pickle.loads(pickle.dumps(scheduler))
    assert clone.global_iteration_budget == 7
    assert clone.steps_taken == 0


# --------------------------------------------------------------------- #
# batch report
# --------------------------------------------------------------------- #
def test_serial_report_accounting(database, requests):
    engine = QueryEngine(database)
    engine.evaluate_many(requests)
    report = engine.last_batch_report
    assert isinstance(report, BatchReport)
    assert report.mode == "serial"
    assert report.num_requests == len(requests)
    assert report.num_chunks == 1
    assert report.kinds["knn"] == 3
    assert report.scheduler_steps > 0
    assert report.pair_bounds_misses > 0
    assert report.elapsed_seconds > 0


def test_process_report_merges_worker_chunks(database, requests):
    engine = QueryEngine(database)
    config = ExecutorConfig(mode="process", workers=2, chunk_size=2)
    engine.evaluate_many(requests, executor=config)
    report = engine.last_batch_report
    assert report.mode == "process"
    assert report.num_chunks == 4  # 7 requests, affinity buckets split by 2
    assert sum(stats.size for stats in report.chunks) == len(requests)
    assert report.kinds == {
        "knn": 3, "rknn": 1, "range": 1, "ranking": 1, "inverse_ranking": 1
    }
    assert report.scheduler_steps > 0
    assert len(report.worker_pids) >= 1
    assert report.busiest_chunk_seconds <= report.elapsed_seconds
    summary = report.to_dict()
    assert summary["num_requests"] == len(requests)
    assert sum(summary["chunk_sizes"]) == len(requests)


# --------------------------------------------------------------------- #
# adapter engine pass-through
# --------------------------------------------------------------------- #
def test_adapters_accept_shared_engine(database, reference, serial_snapshot):
    from repro.queries import probabilistic_knn_threshold

    engine = QueryEngine(database)
    result = probabilistic_knn_threshold(
        database, reference, k=3, tau=0.5, max_iterations=4, engine=engine
    )
    assert _snapshot([result]) == [serial_snapshot[0]]
    assert engine.context.stats()["trees"] > 0  # the shared context did the work


def test_adapters_reject_foreign_engine(database, reference):
    from repro.queries import probabilistic_knn_threshold

    other = uniform_rectangle_database(num_objects=5, max_extent=0.05, seed=9)
    engine = QueryEngine(other)
    with pytest.raises(ValueError):
        probabilistic_knn_threshold(
            database, reference, k=3, tau=0.5, engine=engine
        )


def test_adapters_reject_mismatched_configuration(database, reference):
    from repro.index import RTree
    from repro.queries import probabilistic_knn_threshold, probabilistic_range_query

    engine = QueryEngine(database)  # p=2.0, criterion="optimal"
    with pytest.raises(ValueError, match="p="):
        probabilistic_knn_threshold(
            database, reference, k=3, tau=0.5, p=1.0, engine=engine
        )
    with pytest.raises(ValueError, match="criterion"):
        probabilistic_knn_threshold(
            database, reference, k=3, tau=0.5, criterion="minmax", engine=engine
        )
    with pytest.raises(ValueError, match="rtree"):
        probabilistic_knn_threshold(
            database, reference, k=3, tau=0.5,
            rtree=RTree(database.mbrs()), engine=engine,
        )
    with pytest.raises(ValueError, match="p="):
        probabilistic_range_query(
            database, reference, epsilon=0.3, tau=0.5, p=3.0, engine=engine
        )


def test_adapters_inherit_configuration_from_engine(database, reference):
    from repro.queries import probabilistic_knn_threshold

    # defaulted p/criterion must not be mistaken for explicit requests: a
    # non-default engine is usable without repeating its configuration
    engine = QueryEngine(database, p=1.0, criterion="minmax")
    via_engine = probabilistic_knn_threshold(
        database, reference, k=2, tau=0.5, max_iterations=3, engine=engine
    )
    direct = probabilistic_knn_threshold(
        database, reference, k=2, tau=0.5, max_iterations=3,
        p=1.0, criterion="minmax",
    )
    assert via_engine.result_indices() == direct.result_indices()
    # explicitly repeating the engine's own configuration is also fine
    repeated = probabilistic_knn_threshold(
        database, reference, k=2, tau=0.5, max_iterations=3,
        p=1.0, criterion="minmax", engine=engine,
    )
    assert repeated.result_indices() == direct.result_indices()


def test_partition_requests_validates_arguments(requests):
    with pytest.raises(ValueError, match="workers"):
        partition_requests(requests, 0)
    with pytest.raises(ValueError, match="chunk_size"):
        partition_requests(requests, 2, chunk_size=0)
    with pytest.raises(ValueError, match="chunking"):
        partition_requests(requests, 2, chunking="shuffle")


# --------------------------------------------------------------------- #
# error paths: the per-batch pool never leaks workers or shared memory
# --------------------------------------------------------------------- #
def test_poisoned_request_tears_per_batch_pool_down(database, requests):
    before = set(multiprocessing.active_children())
    engine = QueryEngine(database)
    export = engine.database.share_memory()
    name = export.handle.shm_name
    try:
        poisoned = [requests[0], KNNQuery(0, k=0, tau=0.5)]  # k=0 raises
        config = ExecutorConfig(mode="process", workers=2, chunk_size=1)
        with pytest.raises(ValueError, match="k must be positive"):
            engine.evaluate_many(poisoned, executor=config)
        # the with-block in run_process_batch reaped every worker
        assert not (set(multiprocessing.active_children()) - before)
        # the shared block is owned by the export, not the batch: still linked
        assert export.active
    finally:
        export.close()
    if os.path.isdir("/dev/shm"):
        assert not os.path.exists(f"/dev/shm/{name}")


def test_partitioning_error_raises_before_any_worker_starts(database, requests):
    before = set(multiprocessing.active_children())
    engine = QueryEngine(database)
    config = ExecutorConfig(mode="process", workers=2, chunking="affinity")
    broken = object()  # no affinity_key(): partitioning fails in the parent
    with pytest.raises(AttributeError):
        engine.evaluate_many([requests[0], broken], executor=config)
    assert not (set(multiprocessing.active_children()) - before)
