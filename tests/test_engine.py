"""Unit tests of the unified query engine's building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IDCA, MaxIterations, ThresholdDecision, UncertaintyBelow
from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import (
    KNNQuery,
    QueryEngine,
    RangeQuery,
    RefinementContext,
    RefinementScheduler,
    RTreeCandidateSource,
    ScanCandidateSource,
    make_candidate_source,
)
from repro.index import RTree, exclude_mask, exclude_set, normalize_exclude
from repro.index.scan import knn_candidates as scan_knn_candidates
from repro.queries import probabilistic_knn_threshold
from repro.queries.common import ProbabilisticMatch, ThresholdQueryResult


# object extents large enough that several candidates survive the filter step
# and actually require refinement iterations (exercising trees + pair memo)
@pytest.fixture(scope="module")
def database():
    return uniform_rectangle_database(num_objects=50, max_extent=0.1, seed=5)


@pytest.fixture(scope="module")
def reference():
    return random_reference_object(extent=0.1, seed=13, label="ref")


# --------------------------------------------------------------------- #
# exclude normalisation (index layer)
# --------------------------------------------------------------------- #
class TestNormalizeExclude:
    def test_none(self):
        mask, indices = normalize_exclude(None, 5)
        assert not mask.any()
        assert indices == set()

    def test_iterable_and_set(self):
        mask, indices = normalize_exclude([1, 3], 5)
        assert mask.tolist() == [False, True, False, True, False]
        assert indices == {1, 3}
        mask2, indices2 = normalize_exclude({1, 3}, 5)
        assert np.array_equal(mask, mask2) and indices == indices2

    def test_boolean_mask_round_trip(self):
        source = np.array([True, False, True, False])
        mask, indices = normalize_exclude(source, 4)
        assert np.array_equal(mask, source)
        assert indices == {0, 2}

    def test_out_of_range_positions_ignored(self):
        mask, indices = normalize_exclude([2, 99, -7], 4)
        assert indices == {2}
        assert mask.tolist() == [False, False, True, False]

    def test_wrong_mask_length_raises(self):
        with pytest.raises(ValueError):
            normalize_exclude(np.array([True, False]), 5)

    def test_convenience_wrappers(self):
        assert exclude_mask([0], 2).tolist() == [True, False]
        assert exclude_set(np.array([False, True]), 2) == {1}

    def test_scan_and_rtree_accept_both_forms(self, database, reference):
        mbrs = database.mbrs()
        rtree = RTree(mbrs)
        as_set = {3, 7}
        as_mask = exclude_mask(as_set, len(database))
        scan_set = scan_knn_candidates(mbrs, reference.mbr, 4, exclude=as_set)
        scan_mask = scan_knn_candidates(mbrs, reference.mbr, 4, exclude=as_mask)
        tree_set = rtree.knn_candidates(reference.mbr, 4, exclude=as_set)
        tree_mask = rtree.knn_candidates(reference.mbr, 4, exclude=as_mask)
        assert np.array_equal(scan_set, scan_mask)
        assert np.array_equal(tree_set, tree_mask)


# --------------------------------------------------------------------- #
# candidate sources
# --------------------------------------------------------------------- #
class TestCandidateSources:
    def test_default_source_selection(self, database):
        assert isinstance(make_candidate_source(database), ScanCandidateSource)
        rtree = RTree(database.mbrs())
        source = make_candidate_source(database, rtree)
        assert isinstance(source, RTreeCandidateSource)
        assert source.rtree is rtree

    def test_knn_candidates_agree(self, database, reference):
        scan = ScanCandidateSource(database)
        tree = RTreeCandidateSource(database)
        for k in (1, 3, 8):
            a = scan.knn_candidates(reference.mbr, k, 2.0, None)
            b = tree.knn_candidates(reference.mbr, k, 2.0, None)
            # both are conservative candidate sets; the scan threshold is the
            # exact k-th MaxDist, which the best-first traversal also reaches
            assert np.array_equal(a, b)

    def test_range_classification_agrees(self, database, reference):
        scan = ScanCandidateSource(database)
        tree = RTreeCandidateSource(database)
        for epsilon in (0.05, 0.2, 0.5):
            a = scan.range_classify(reference.mbr, epsilon, 2.0, {2})
            b = tree.range_classify(reference.mbr, epsilon, 2.0, {2})
            assert np.array_equal(np.sort(a.definite), np.sort(b.definite))
            assert np.array_equal(np.sort(a.refine), np.sort(b.refine))
            assert a.pruned == b.pruned

    def test_all_candidates_excludes(self, database):
        scan = ScanCandidateSource(database)
        result = scan.all_candidates({0, 4})
        assert 0 not in result and 4 not in result
        assert result.shape[0] == len(database) - 2


# --------------------------------------------------------------------- #
# shared refinement context
# --------------------------------------------------------------------- #
class TestRefinementContext:
    def test_tree_cache_by_identity(self, database):
        context = RefinementContext(database)
        obj = database[3]
        assert context.tree_for(obj) is context.tree_for(obj)
        assert context.stats()["trees"] == 1

    def test_idca_instances_memoised_per_parameters(self, database):
        context = RefinementContext(database)
        a = context.idca_for(k_cap=2)
        b = context.idca_for(k_cap=2)
        c = context.idca_for(k_cap=3)
        assert a is b and a is not c
        # all instances share the context caches
        assert a._trees is context.tree_cache
        assert c._trees is context.tree_cache

    def test_pair_bounds_cache_records_hits(self, database, reference):
        context = RefinementContext(database)
        engine = QueryEngine(database, context=context)
        engine.knn(reference, k=3, tau=0.5, max_iterations=3)
        first = context.stats()
        assert first["pair_bounds"] > 0
        engine.knn(reference, k=3, tau=0.5, max_iterations=3)
        second = context.stats()
        # the repeated query re-uses every previously computed pair bound
        assert second["pair_bounds_hits"] >= first["pair_bounds"]
        assert second["pair_bounds"] == first["pair_bounds"]

    def test_shared_caches_do_not_change_results(self, database, reference):
        fresh = probabilistic_knn_threshold(database, reference, k=2, tau=0.5)
        context = RefinementContext(database)
        engine = QueryEngine(database, context=context)
        warm_up = engine.knn(reference, k=2, tau=0.5)
        cached = engine.knn(reference, k=2, tau=0.5)
        for a, b in ((fresh, warm_up), (fresh, cached)):
            assert a.result_indices() == b.result_indices()
            assert [m.index for m in a.undecided] == [m.index for m in b.undecided]
            assert [m.index for m in a.rejected] == [m.index for m in b.rejected]


# --------------------------------------------------------------------- #
# incremental IDCA runs + scheduler
# --------------------------------------------------------------------- #
class TestIncrementalRuns:
    def test_stepwise_equals_monolithic(self, database, reference):
        idca_a = IDCA(database)
        idca_b = IDCA(database)
        monolithic = idca_a.domination_count(
            0, reference, stop=MaxIterations(4), max_iterations=4
        )
        run = idca_b.start_run(0, reference, stop=MaxIterations(4), max_iterations=4)
        steps = 0
        while run.step():
            steps += 1
        assert steps == monolithic.num_iterations
        assert np.allclose(run.result.bounds.lower, monolithic.bounds.lower)
        assert np.allclose(run.result.bounds.upper, monolithic.bounds.upper)
        assert run.result.complete_count == monolithic.complete_count

    def test_finished_run_refuses_steps(self, database, reference):
        idca = IDCA(database)
        run = idca.start_run(0, reference, max_iterations=0)
        assert run.finished
        assert run.step() is False

    def test_threshold_run_decides(self, database, reference):
        idca = IDCA(database, k_cap=2)
        stop = ThresholdDecision(k=2, tau=0.5)
        run = idca.start_run(0, reference, stop=stop, max_iterations=10)
        result = run.run()
        assert result.decision is stop.decision

    def test_scheduler_prioritises_widest_bounds(self, database, reference):
        idca = IDCA(database)
        runs = [
            idca.start_run(i, reference, stop=UncertaintyBelow(0.2), max_iterations=5)
            for i in range(6)
        ]
        stepped: list[float] = []

        def priority(run):
            value = run.result.bounds.uncertainty()
            stepped.append(value)
            return value

        RefinementScheduler().refine(runs, priority)
        for run in runs:
            assert run.finished

    def test_global_budget_caps_total_iterations(self, database, reference):
        idca = IDCA(database)
        runs = [
            idca.start_run(i, reference, stop=UncertaintyBelow(0.0), max_iterations=4)
            for i in range(5)
        ]
        scheduler = RefinementScheduler(global_iteration_budget=3)
        steps = scheduler.refine(runs, lambda run: run.result.bounds.uncertainty())
        assert steps <= 3
        assert sum(run.iteration for run in runs) == steps

    def test_on_finished_called_once_per_run(self, database, reference):
        idca = IDCA(database)
        runs = [
            idca.start_run(i, reference, stop=UncertaintyBelow(0.3), max_iterations=4)
            for i in range(4)
        ]
        pending = [run for run in runs if not run.finished]
        finished = []
        RefinementScheduler().refine(
            runs, lambda run: run.result.bounds.uncertainty(), on_finished=finished.append
        )
        assert sorted(map(id, finished)) == sorted(map(id, pending))


# --------------------------------------------------------------------- #
# engine-level behaviour
# --------------------------------------------------------------------- #
class TestQueryEngine:
    def test_evaluate_many_matches_individual_calls(self, database, reference):
        engine = QueryEngine(database)
        batch = engine.evaluate_many(
            [
                KNNQuery(reference, k=2, tau=0.5, max_iterations=4),
                RangeQuery(reference, epsilon=0.25, tau=0.5, max_depth=3),
            ]
        )
        single_engine = QueryEngine(database)
        singles = [
            single_engine.knn(reference, k=2, tau=0.5, max_iterations=4),
            single_engine.range(reference, epsilon=0.25, tau=0.5, max_depth=3),
        ]
        for got, want in zip(batch, singles):
            assert got.result_indices() == want.result_indices()
            assert got.pruned == want.pruned

    def test_global_budget_leaves_candidates_undecided(self, database, reference):
        unconstrained = QueryEngine(database).knn(
            reference, k=3, tau=0.5, max_iterations=6
        )
        budget = QueryEngine(
            database, scheduler=RefinementScheduler(global_iteration_budget=0)
        ).knn(reference, k=3, tau=0.5, max_iterations=6)
        assert budget.candidate_count() == unconstrained.candidate_count()
        # with zero refinement budget nothing beyond the filter step can decide
        total_iterations = sum(m.iterations for m in budget.all_evaluated())
        assert total_iterations == 0

    def test_sequence_numbers_record_evaluation_order(self, database, reference):
        result = QueryEngine(database).knn(reference, k=3, tau=0.5, max_iterations=6)
        evaluated = result.all_evaluated()
        sequences = [m.sequence for m in evaluated]
        assert sequences == sorted(sequences)
        assert sorted(sequences) == list(range(len(evaluated)))

    def test_all_evaluated_backwards_compatible_without_sequences(self):
        result = ThresholdQueryResult(k=1, tau=0.5)
        a = ProbabilisticMatch(0, 0.9, 1.0, True, 1)
        b = ProbabilisticMatch(1, 0.1, 0.6, None, 2)
        result.matches.append(a)
        result.undecided.append(b)
        assert result.all_evaluated() == [a, b]

    def test_supplied_idca_is_validated(self, database, reference):
        engine = QueryEngine(database)
        truncated = IDCA(database, k_cap=1)
        with pytest.raises(ValueError):
            engine.knn(reference, k=3, tau=0.5, idca=truncated)
        with pytest.raises(ValueError):
            engine.ranking(reference, idca=truncated)
