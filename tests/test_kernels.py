"""Kernel backend ladder, CSR batch cache, and engine-level backend parity.

Complements ``tests/test_pdom_batch.py`` (numerical parity of the kernel
implementations) with the plumbing around them: backend resolution and
fallback (explicit argument > ``REPRO_KERNEL_BACKEND`` > availability),
``csr_partitions_batch`` construction and its per-depth-set cache, the
kernel timing counters surfaced in ``IterationStats`` / ``BatchReport``,
and bit-identical engine results across backends × worker counts × shared
bounds store on/off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IDCA, MaxIterations
from repro.core import kernels as kernels_module
from repro.core.kernels import (
    KERNEL_BACKENDS,
    available_backends,
    default_backend,
    kernel_environment,
    kernel_stats,
    numba_available,
    pdom_bounds_csr,
    resolve_backend,
    total_kernel_seconds,
)
from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import (
    ExecutorConfig,
    InverseRankingQuery,
    KNNQuery,
    QueryEngine,
    RankingQuery,
)
from repro.engine.boundstore import bound_store_available
from repro.engine.service import QueryService
from repro.uncertain import (
    DecompositionTree,
    clear_csr_cache,
    csr_partitions_batch,
)


@pytest.fixture(scope="module")
def database():
    return uniform_rectangle_database(num_objects=20, max_extent=0.05, seed=41)


@pytest.fixture(scope="module")
def reference():
    return random_reference_object(extent=0.05, seed=42, label="query")


@pytest.fixture(scope="module")
def requests(reference):
    return [
        KNNQuery(reference, k=3, tau=0.5, max_iterations=3),
        KNNQuery(7, k=2, tau=0.3, max_iterations=3),
        RankingQuery(reference, max_iterations=2, candidate_indices=range(8)),
        InverseRankingQuery(5, reference, max_iterations=3),
    ]


def _snapshot(results) -> list:
    snap = []
    for result in results:
        if hasattr(result, "matches"):
            snap.append(
                [
                    (m.index, m.probability_lower, m.probability_upper,
                     m.decision, m.iterations, m.sequence)
                    for bucket in (result.matches, result.undecided, result.rejected)
                    for m in bucket
                ]
            )
        elif hasattr(result, "ranking"):
            snap.append(
                [
                    (e.index, e.expected_rank_lower, e.expected_rank_upper, e.iterations)
                    for e in result.ranking
                ]
            )
        else:
            snap.append((list(map(float, result.lower)), list(map(float, result.upper))))
    return snap


# --------------------------------------------------------------------- #
# backend resolution ladder
# --------------------------------------------------------------------- #
class TestBackendResolution:
    def test_explicit_numpy_always_resolves(self):
        assert resolve_backend("numpy") == "numpy"

    def test_numba_request_degrades_gracefully(self):
        resolved = resolve_backend("numba")
        if numba_available():
            assert resolved == "numba"
        else:
            assert resolved == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("mkl")

    def test_default_prefers_numba_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        expected = "numba" if numba_available() else "numpy"
        assert default_backend() == expected
        assert resolve_backend(None) == expected

    def test_env_variable_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert resolve_backend(None) == "numpy"
        assert default_backend() == "numpy"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        if numba_available():
            assert resolve_backend("numba") == "numba"
        else:
            assert resolve_backend("numba") == "numpy"

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend(None)

    def test_empty_env_value_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "")
        assert resolve_backend(None) in KERNEL_BACKENDS

    def test_available_backends_always_contains_numpy(self):
        backends = available_backends()
        assert "numpy" in backends
        assert ("numba" in backends) == numba_available()

    def test_kernel_environment_metadata(self):
        env = kernel_environment()
        assert env["numpy_version"] == np.__version__
        assert env["cpu_count"] >= 1
        assert env["default_backend"] in KERNEL_BACKENDS
        assert set(env["available_backends"]) <= set(KERNEL_BACKENDS)
        if not numba_available():
            assert env["numba_version"] is None

    def test_executor_config_validates_backend_name(self):
        ExecutorConfig(kernel_backend="numpy")
        ExecutorConfig(kernel_backend="numba")  # name check only: no import
        with pytest.raises(ValueError, match="unknown kernel backend"):
            ExecutorConfig(kernel_backend="cython")

    def test_idca_and_engine_validate_backend_name(self, database):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            IDCA(database, kernel_backend="bogus")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            QueryEngine(database, kernel_backend="bogus")


# --------------------------------------------------------------------- #
# CSR batch construction and caching
# --------------------------------------------------------------------- #
class TestCSRPartitionBatch:
    def test_layout_matches_per_tree_arrays(self, database):
        trees = [DecompositionTree(obj) for obj in database[:6]]
        depths = [1 + (i % 3) for i in range(6)]
        batch = csr_partitions_batch(trees, depths)
        assert batch.num_candidates == 6
        assert batch.offsets[0] == 0 and batch.offsets[-1] == batch.total_partitions
        for i, (tree, depth) in enumerate(zip(trees, depths)):
            regions, masses = tree.partitions_arrays(depth)
            lo, hi = int(batch.offsets[i]), int(batch.offsets[i + 1])
            assert hi - lo == masses.shape[0] == int(batch.counts[i])
            assert np.array_equal(batch.regions[lo:hi], regions)
            assert np.array_equal(batch.masses[lo:hi], masses)

    def test_unchanged_depth_set_reuses_cached_batch(self, database):
        trees = [DecompositionTree(obj) for obj in database[:4]]
        first = csr_partitions_batch(trees, [2, 2, 3, 3])
        second = csr_partitions_batch(trees, [2, 2, 3, 3])
        assert first is second  # iteration N+1 reuses N's concatenation
        third = csr_partitions_batch(trees, [2, 2, 3, 4])
        assert third is not first

    def test_cache_key_uses_effective_depth(self, database):
        tree = DecompositionTree(database[0], max_depth=2)
        capped = csr_partitions_batch([tree], [5])
        exact = csr_partitions_batch([tree], [2])
        assert capped is exact  # both clamp to max_depth=2

    def test_arrays_are_read_only(self, database):
        batch = csr_partitions_batch([DecompositionTree(database[0])], [2])
        for array in (batch.regions, batch.masses, batch.offsets):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[...] = 0

    def test_empty_batch(self):
        batch = csr_partitions_batch([], [])
        assert batch.num_candidates == 0
        assert batch.total_partitions == 0
        assert batch.offsets.tolist() == [0]

    def test_mismatched_lengths_raise(self, database):
        with pytest.raises(ValueError):
            csr_partitions_batch([DecompositionTree(database[0])], [1, 2])

    def test_clear_csr_cache(self, database):
        trees = [DecompositionTree(database[0])]
        first = csr_partitions_batch(trees, [1])
        clear_csr_cache()
        second = csr_partitions_batch(trees, [1])
        assert first is not second
        assert np.array_equal(first.regions, second.regions)


# --------------------------------------------------------------------- #
# timing instrumentation
# --------------------------------------------------------------------- #
class TestKernelTiming:
    def test_counters_accumulate_per_call(self, database):
        tree = DecompositionTree(database[0])
        batch = csr_partitions_batch([tree], [3])
        grid, _ = DecompositionTree(database[1]).partitions_arrays(1)
        before_seconds = total_kernel_seconds()
        before_calls = kernel_stats()["kernel_calls"]
        pdom_bounds_csr(
            batch.regions, batch.masses, batch.offsets, grid, grid, backend="numpy"
        )
        assert total_kernel_seconds() > before_seconds
        assert kernel_stats()["kernel_calls"] == before_calls + 1
        assert kernel_stats()["per_backend_calls"]["numpy"] >= 1

    def test_iteration_stats_record_backend_and_time(self, database, reference):
        idca = IDCA(database, kernel_backend="numpy")
        result = idca.domination_count(
            0, reference, stop=MaxIterations(2), max_iterations=2
        )
        refined = result.iterations[1:]
        assert refined, "expected at least one refinement iteration"
        for stat in refined:
            assert stat.kernel_backend == "numpy"
            assert 0.0 <= stat.kernel_seconds <= stat.elapsed_seconds
        # the fresh run computed at least one column in the kernel
        assert any(stat.kernel_seconds > 0.0 for stat in refined)

    def test_batch_report_surfaces_kernel_fields(self, database, requests):
        engine = QueryEngine(database)
        engine.evaluate_many(requests, ExecutorConfig(mode="serial"))
        report = engine.last_batch_report
        assert report.kernel_backend == resolve_backend(None)
        assert report.kernel_seconds > 0.0
        payload = report.to_dict()
        assert payload["kernel_backend"] == report.kernel_backend
        assert payload["kernel_seconds"] == report.kernel_seconds


# --------------------------------------------------------------------- #
# engine-level parity: backends × workers × shared bounds store
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def serial_snapshot(database, requests):
    return _snapshot(QueryEngine(database).evaluate_many(requests))


class TestEngineBackendParity:
    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    def test_serial_backend_override_is_bit_identical(
        self, database, requests, serial_snapshot, backend
    ):
        engine = QueryEngine(database)
        config = ExecutorConfig(mode="serial", kernel_backend=backend)
        assert _snapshot(engine.evaluate_many(requests, config)) == serial_snapshot
        # the per-batch override does not stick to the engine
        assert engine.kernel_backend is None

    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_process_pool_backend_is_bit_identical(
        self, database, requests, serial_snapshot, workers, backend
    ):
        engine = QueryEngine(database, kernel_backend=backend)
        config = ExecutorConfig(mode="process", workers=workers)
        assert _snapshot(engine.evaluate_many(requests, config)) == serial_snapshot
        report = engine.last_batch_report
        assert report.kernel_backend == resolve_backend(backend)

    @pytest.mark.parametrize("shared_bounds", [False, True])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_service_backends_shared_bounds_matrix(
        self, database, requests, serial_snapshot, workers, shared_bounds
    ):
        if shared_bounds and not bound_store_available():
            pytest.skip("shared bounds store unavailable on this platform")
        engine = QueryEngine(database, kernel_backend="numpy")
        config = ExecutorConfig(workers=workers, shared_bounds=shared_bounds)
        with QueryService(engine, config) as service:
            assert _snapshot(service.evaluate_many(requests)) == serial_snapshot
            assert _snapshot(service.evaluate_many(requests)) == serial_snapshot

    def test_forced_numpy_env_is_bit_identical(
        self, database, requests, serial_snapshot, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        engine = QueryEngine(database)
        assert _snapshot(engine.evaluate_many(requests)) == serial_snapshot
        assert engine.last_batch_report.kernel_backend == "numpy"
