"""End-to-end integration tests across the whole library.

These tests exercise the complete pipeline — dataset generation, candidate
filtering, IDCA refinement, query semantics and the baselines — on small but
non-trivial inputs, and cross-check the independent code paths against each
other (IDCA vs MC vs exact oracle, scan vs R-tree candidates, optimal vs
MinMax criterion).
"""

import numpy as np
import pytest

import repro
from repro import (
    IDCA,
    MaxIterations,
    MonteCarloDominationCount,
    ThresholdDecision,
    UncertaintyBelow,
    discretise_database,
    expected_rank_ranking,
    generate_query_workload,
    iip_iceberg_database,
    probabilistic_inverse_ranking,
    probabilistic_knn_threshold,
    probabilistic_rknn_threshold,
    uniform_rectangle_database,
)
from repro.baselines import exact_domination_count_pmf
from repro.datasets import IIPSimulationConfig
from repro.uncertain import DiscreteObject


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.9.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"


class TestEndToEndSyntheticWorkload:
    """The paper's standard workload on a scaled-down synthetic dataset."""

    @pytest.fixture(scope="class")
    def database(self):
        return uniform_rectangle_database(400, max_extent=0.02, seed=99)

    @pytest.fixture(scope="class")
    def workload(self, database):
        return generate_query_workload(database, num_queries=3, target_rank=10, seed=100)

    def test_workload_refinement_reduces_uncertainty(self, database, workload):
        idca = IDCA(database)
        for pair in workload:
            run = idca.domination_count(
                pair.target_index, pair.reference, stop=MaxIterations(4), max_iterations=4
            )
            assert run.iterations[-1].uncertainty <= run.iterations[0].uncertainty

    def test_optimal_criterion_dominates_minmax_throughout(self, database, workload):
        for pair in workload:
            optimal = IDCA(database, criterion="optimal").domination_count(
                pair.target_index, pair.reference, stop=MaxIterations(2), max_iterations=2
            )
            minmax = IDCA(database, criterion="minmax").domination_count(
                pair.target_index, pair.reference, stop=MaxIterations(2), max_iterations=2
            )
            assert optimal.num_influence <= minmax.num_influence
            assert optimal.bounds.uncertainty() <= minmax.bounds.uncertainty() + 1e-9

    def test_knn_and_inverse_ranking_are_consistent(self, database, workload):
        """P(kNN) from the query layer equals P(rank <= k) from inverse ranking."""
        pair = workload[0]
        k, tau = 5, 0.5
        knn = probabilistic_knn_threshold(
            database, pair.reference, k=k, tau=tau, max_iterations=4
        )
        for match in knn.matches[:3]:
            distribution = probabilistic_inverse_ranking(
                database, match.index, pair.reference, max_iterations=4
            )
            lower, upper = distribution.rank_at_most(k)
            assert upper >= tau - 1e-9


class TestCrossValidationWithBaselines:
    """IDCA, the MC partner and the exact oracle must agree on discrete data."""

    @pytest.fixture(scope="class")
    def setup(self):
        base = uniform_rectangle_database(25, max_extent=0.1, seed=7)
        rng = np.random.default_rng(7)
        discrete = discretise_database(base, 30, rng)
        reference = DiscreteObject(rng.uniform(0, 1, size=(10, 2)), label="ref")
        return discrete, reference

    def test_three_way_agreement(self, setup):
        discrete, reference = setup
        target = 3
        exact = exact_domination_count_pmf(
            discrete, discrete[target], reference, exclude_indices=[target]
        )
        mc = MonteCarloDominationCount(discrete, samples_per_object=30, seed=1)
        mc_pmf = mc.domination_count_pmf(target, reference).pmf
        np.testing.assert_allclose(mc_pmf, exact, atol=1e-9)

        idca = IDCA(discrete, max_target_depth=5, max_reference_depth=5)
        run = idca.domination_count(
            target, reference, stop=UncertaintyBelow(0.0), max_iterations=10
        )
        assert np.all(run.bounds.lower <= exact + 1e-9)
        assert np.all(run.bounds.upper >= exact - 1e-9)

    def test_threshold_query_decision_matches_oracle_probability(self, setup):
        discrete, reference = setup
        k, tau = 4, 0.5
        result = probabilistic_knn_threshold(
            discrete, reference, k=k, tau=tau, max_iterations=12
        )
        for match in result.matches:
            exact = exact_domination_count_pmf(
                discrete, discrete[match.index], reference, exclude_indices=[match.index]
            )
            assert exact[:k].sum() >= tau - 1e-9
        for match in result.rejected:
            exact = exact_domination_count_pmf(
                discrete, discrete[match.index], reference, exclude_indices=[match.index]
            )
            assert exact[:k].sum() <= tau + 1e-9


class TestIIPScenario:
    """The simulated real-world dataset end to end."""

    @pytest.fixture(scope="class")
    def database(self):
        return iip_iceberg_database(IIPSimulationConfig(num_objects=300, seed=13))

    def test_knn_query_on_icebergs(self, database):
        query = repro.random_reference_object(extent=0.001, seed=14, label="vessel")
        result = probabilistic_knn_threshold(database, query, k=5, tau=0.5, max_iterations=5)
        assert len(result.matches) >= 1
        assert result.candidate_count() + result.pruned == len(database)

    def test_rknn_query_on_icebergs(self, database):
        query = repro.random_reference_object(extent=0.001, seed=15, label="vessel")
        # restrict to a candidate subset for speed; semantics already verified
        result = probabilistic_rknn_threshold(
            database, query, k=3, tau=0.25, candidate_indices=range(40), max_iterations=3
        )
        assert result.candidate_count() == 40

    def test_expected_rank_ranking_orders_by_distance_roughly(self, database):
        query = repro.random_reference_object(extent=0.001, seed=16, label="vessel")
        candidates = list(range(30))
        ranking = expected_rank_ranking(
            database, query, candidate_indices=candidates, max_iterations=3
        )
        assert sorted(ranking.order()) == candidates
        ranks = [entry.expected_rank_midpoint for entry in ranking.ranking]
        assert ranks == sorted(ranks)


class TestThresholdDecisionEfficiency:
    def test_decided_queries_use_fewer_iterations(self):
        """The whole point of the pruning framework: easy predicates stop early."""
        database = uniform_rectangle_database(300, max_extent=0.01, seed=17)
        reference = repro.random_reference_object(extent=0.01, seed=18)
        easy_target = repro.target_by_mindist_rank(database, reference, rank=1)
        idca = IDCA(database, k_cap=10)
        easy = idca.domination_count(
            easy_target, reference, stop=ThresholdDecision(k=10, tau=0.5), max_iterations=10
        )
        full = IDCA(database).domination_count(
            easy_target, reference, stop=UncertaintyBelow(0.01), max_iterations=10
        )
        assert easy.num_iterations <= full.num_iterations
        assert easy.decision is True
