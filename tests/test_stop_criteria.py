"""Unit tests for IDCA stop criteria."""

import numpy as np
import pytest

from repro.core import (
    AnyOf,
    DominationCountBounds,
    MaxIterations,
    NeverStop,
    ThresholdDecision,
    UncertaintyBelow,
)


def _bounds(lower, upper, k_cap=None):
    return DominationCountBounds(np.asarray(lower, float), np.asarray(upper, float), k_cap=k_cap)


class TestNeverStop:
    def test_never_stops(self):
        criterion = NeverStop()
        bounds = DominationCountBounds.exact([1.0])
        assert not criterion.should_stop(bounds, 0)
        assert not criterion.should_stop(bounds, 100)


class TestMaxIterations:
    def test_stops_at_limit(self):
        criterion = MaxIterations(3)
        bounds = DominationCountBounds.vacuous(2)
        assert not criterion.should_stop(bounds, 2)
        assert criterion.should_stop(bounds, 3)
        assert criterion.should_stop(bounds, 4)

    def test_zero_iterations_stops_immediately(self):
        assert MaxIterations(0).should_stop(DominationCountBounds.vacuous(2), 0)

    def test_negative_iterations_raise(self):
        with pytest.raises(ValueError):
            MaxIterations(-1)


class TestUncertaintyBelow:
    def test_stops_when_budget_met(self):
        criterion = UncertaintyBelow(0.5)
        assert not criterion.should_stop(_bounds([0.0, 0.0], [0.5, 0.5]), 1)
        assert criterion.should_stop(_bounds([0.2, 0.3], [0.4, 0.4]), 1)

    def test_zero_budget_requires_convergence(self):
        criterion = UncertaintyBelow(0.0)
        assert not criterion.should_stop(_bounds([0.0], [0.1]), 1)
        assert criterion.should_stop(DominationCountBounds.exact([0.4, 0.6]), 1)

    def test_negative_budget_raises(self):
        with pytest.raises(ValueError):
            UncertaintyBelow(-0.1)


class TestThresholdDecision:
    def test_true_hit(self):
        criterion = ThresholdDecision(k=2, tau=0.5)
        # P(count < 2) is at least 0.7 -> predicate holds
        bounds = _bounds([0.3, 0.4, 0.0], [0.4, 0.5, 0.3])
        assert criterion.should_stop(bounds, 1)
        assert criterion.decision is True

    def test_true_drop(self):
        criterion = ThresholdDecision(k=1, tau=0.9)
        # P(count < 1) can be at most 0.4 -> predicate fails
        bounds = _bounds([0.1, 0.2, 0.1], [0.4, 0.8, 0.9])
        assert criterion.should_stop(bounds, 1)
        assert criterion.decision is False

    def test_undecided(self):
        criterion = ThresholdDecision(k=1, tau=0.5)
        bounds = _bounds([0.2, 0.0], [0.8, 0.8])
        assert not criterion.should_stop(bounds, 1)
        assert criterion.decision is None
        assert criterion.last_bounds == pytest.approx((0.2, 0.8))

    def test_boundary_inclusive_by_default(self):
        criterion = ThresholdDecision(k=1, tau=0.5)
        bounds = DominationCountBounds.exact([0.5, 0.5])
        assert criterion.should_stop(bounds, 1)
        assert criterion.decision is True

    def test_strict_mode_boundary(self):
        criterion = ThresholdDecision(k=1, tau=0.5, strict=True)
        bounds = DominationCountBounds.exact([0.5, 0.5])
        assert criterion.should_stop(bounds, 1)
        assert criterion.decision is False

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            ThresholdDecision(k=0, tau=0.5)
        with pytest.raises(ValueError):
            ThresholdDecision(k=1, tau=1.5)


class TestAnyOf:
    def test_any_member_triggers(self):
        criterion = AnyOf([MaxIterations(5), UncertaintyBelow(0.1)])
        assert not criterion.should_stop(_bounds([0.0], [1.0]), 1)
        assert criterion.should_stop(DominationCountBounds.exact([1.0]), 1)
        assert criterion.should_stop(_bounds([0.0], [1.0]), 5)

    def test_empty_members_raise(self):
        with pytest.raises(ValueError):
            AnyOf([])
