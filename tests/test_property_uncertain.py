"""Property-based tests (hypothesis) for the uncertainty model and decomposition."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry import Rectangle
from repro.uncertain import (
    BoxUniformObject,
    DecompositionTree,
    DiscreteObject,
    TruncatedGaussianObject,
)

coordinate = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
extent = st.floats(min_value=1e-4, max_value=5.0, allow_nan=False)


@st.composite
def box_objects(draw):
    lows = [draw(coordinate), draw(coordinate)]
    extents = [draw(extent), draw(extent)]
    highs = [lo + ex for lo, ex in zip(lows, extents)]
    return BoxUniformObject(Rectangle.from_bounds(lows, highs))


@st.composite
def gaussian_objects(draw):
    mean = [draw(coordinate), draw(coordinate)]
    std = [draw(st.floats(min_value=0.01, max_value=2.0)), draw(st.floats(min_value=0.01, max_value=2.0))]
    return TruncatedGaussianObject(mean, std)


@st.composite
def discrete_objects(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    # coordinates are rounded so that "distinct" alternatives are separated by
    # more than the numerical duplicate tolerance of the decomposition
    points = [
        [round(draw(coordinate), 3), round(draw(coordinate), 3)] for _ in range(n)
    ]
    weights = [draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(n)]
    return DiscreteObject(np.array(points), np.array(weights) / sum(weights))


@st.composite
def subregions(draw, obj):
    """A random axis-aligned region overlapping the object's MBR."""
    mbr = obj.mbr
    lows, highs = [], []
    for iv in mbr.intervals:
        a = draw(st.floats(min_value=iv.lo - 1.0, max_value=iv.hi, allow_nan=False))
        b = draw(st.floats(min_value=a, max_value=iv.hi + 1.0, allow_nan=False))
        lows.append(a)
        highs.append(b)
    return Rectangle.from_bounds(lows, highs)


class TestMassProperties:
    @settings(max_examples=80)
    @given(st.data())
    def test_mass_between_zero_and_one(self, data):
        obj = data.draw(st.one_of(box_objects(), gaussian_objects(), discrete_objects()))
        region = data.draw(subregions(obj))
        mass = obj.mass_in(region)
        assert -1e-9 <= mass <= 1.0 + 1e-9

    @settings(max_examples=80)
    @given(st.data())
    def test_mass_of_mbr_is_existence_probability(self, data):
        obj = data.draw(st.one_of(box_objects(), gaussian_objects(), discrete_objects()))
        assert abs(obj.mass_in(obj.mbr) - obj.existence_probability) < 1e-6

    @settings(max_examples=80)
    @given(st.data())
    def test_mass_monotone_under_region_inclusion(self, data):
        obj = data.draw(st.one_of(box_objects(), gaussian_objects(), discrete_objects()))
        region = data.draw(subregions(obj))
        grown = Rectangle.from_bounds(region.lows - 0.5, region.highs + 0.5)
        assert obj.mass_in(region) <= obj.mass_in(grown) + 1e-9

    @settings(max_examples=60)
    @given(st.data())
    def test_samples_lie_inside_mbr(self, data):
        obj = data.draw(st.one_of(box_objects(), gaussian_objects(), discrete_objects()))
        rng = np.random.default_rng(data.draw(st.integers(min_value=0, max_value=10_000)))
        samples = obj.sample(64, rng)
        assert np.all(samples >= obj.mbr.lows - 1e-9)
        assert np.all(samples <= obj.mbr.highs + 1e-9)

    @settings(max_examples=60)
    @given(st.data())
    def test_mean_lies_inside_mbr(self, data):
        obj = data.draw(st.one_of(box_objects(), gaussian_objects(), discrete_objects()))
        mean = obj.mean()
        assert np.all(mean >= obj.mbr.lows - 1e-9)
        assert np.all(mean <= obj.mbr.highs + 1e-9)


class TestDecompositionProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.data(), st.integers(min_value=0, max_value=6))
    def test_partition_masses_sum_to_existence(self, data, depth):
        obj = data.draw(st.one_of(box_objects(), gaussian_objects(), discrete_objects()))
        tree = DecompositionTree(obj)
        parts = tree.partitions(depth)
        total = sum(p.probability for p in parts)
        assert abs(total - obj.existence_probability) < 1e-6

    @settings(max_examples=60, deadline=None)
    @given(st.data(), st.integers(min_value=0, max_value=6))
    def test_partitions_stay_inside_mbr(self, data, depth):
        obj = data.draw(st.one_of(box_objects(), gaussian_objects(), discrete_objects()))
        tree = DecompositionTree(obj)
        for part in tree.partitions(depth):
            assert obj.mbr.contains_rectangle(part.region)

    @settings(max_examples=60, deadline=None)
    @given(st.data(), st.integers(min_value=0, max_value=6))
    def test_partition_probability_matches_mass(self, data, depth):
        obj = data.draw(st.one_of(box_objects(), gaussian_objects()))
        tree = DecompositionTree(obj)
        for part in tree.partitions(depth):
            assert abs(part.probability - obj.mass_in(part.region)) < 1e-6

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_partition_count_never_decreases_with_depth(self, data):
        obj = data.draw(st.one_of(box_objects(), discrete_objects()))
        tree = DecompositionTree(obj)
        previous = 0
        for depth in range(0, 6):
            count = tree.num_partitions(depth)
            assert count >= previous
            previous = count

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_discrete_leaves_eventually_singletons(self, data):
        obj = data.draw(discrete_objects())
        tree = DecompositionTree(obj)
        parts = tree.partitions(20)
        distinct_points = np.unique(obj.points, axis=0)
        assert len(parts) == distinct_points.shape[0]
