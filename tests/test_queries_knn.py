"""Tests for probabilistic threshold kNN queries (Corollary 4)."""

import numpy as np
import pytest

from repro.baselines import exact_domination_count_pmf
from repro.core import IDCA
from repro.datasets import discrete_sample_database, uniform_rectangle_database
from repro.index import RTree
from repro.queries import probabilistic_knn_threshold
from repro.uncertain import DiscreteObject, PointObject


def exact_knn_probability(database, target_index, query, k):
    """Oracle: P(target is a kNN of query) for discrete databases."""
    pmf = exact_domination_count_pmf(
        database, database[target_index], query, exclude_indices=[target_index]
    )
    return float(pmf[:k].sum())


class TestAgainstOracle:
    @pytest.mark.parametrize("k,tau", [(1, 0.3), (2, 0.5), (3, 0.25), (3, 0.75)])
    def test_decisions_match_oracle(self, k, tau):
        database = discrete_sample_database(
            num_objects=8, samples_per_object=4, max_extent=0.3, seed=17
        )
        rng = np.random.default_rng(17)
        query = DiscreteObject(rng.uniform(0, 1, size=(3, 2)), label="query")
        result = probabilistic_knn_threshold(
            database, query, k=k, tau=tau, max_iterations=15
        )
        # every decided object must agree with the exact probability
        for match in result.matches:
            exact = exact_knn_probability(database, match.index, query, k)
            assert exact >= tau - 1e-9
        for match in result.rejected:
            exact = exact_knn_probability(database, match.index, query, k)
            assert exact <= tau + 1e-9
        # undecided objects must have bounds that really straddle tau
        for match in result.undecided:
            assert match.probability_lower <= tau <= match.probability_upper

    def test_probability_bounds_bracket_oracle(self):
        database = discrete_sample_database(
            num_objects=8, samples_per_object=4, max_extent=0.3, seed=23
        )
        rng = np.random.default_rng(23)
        query = DiscreteObject(rng.uniform(0, 1, size=(3, 2)), label="query")
        result = probabilistic_knn_threshold(
            database, query, k=2, tau=0.5, max_iterations=6
        )
        for match in result.all_evaluated():
            exact = exact_knn_probability(database, match.index, query, 2)
            assert match.probability_lower <= exact + 1e-9
            assert match.probability_upper >= exact - 1e-9


class TestQueryMechanics:
    def setup_method(self):
        self.database = uniform_rectangle_database(100, max_extent=0.02, seed=31)
        self.query = PointObject([0.5, 0.5], label="q")

    def test_result_accounting(self):
        result = probabilistic_knn_threshold(self.database, self.query, k=3, tau=0.5)
        assert result.candidate_count() + result.pruned == len(self.database)
        assert result.k == 3 and result.tau == 0.5
        assert result.elapsed_seconds >= 0.0

    def test_result_indices_are_matches(self):
        result = probabilistic_knn_threshold(self.database, self.query, k=3, tau=0.5)
        assert result.result_indices() == [m.index for m in result.matches]

    def test_at_most_k_over_tau_matches(self):
        """At most k/tau objects can have kNN probability above tau."""
        k, tau = 3, 0.5
        result = probabilistic_knn_threshold(self.database, self.query, k=k, tau=tau)
        assert len(result.matches) <= int(k / tau)

    def test_certain_database_certain_query_is_classic_knn(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(40, 2))
        from repro.uncertain import UncertainDatabase

        database = UncertainDatabase([PointObject(p) for p in points])
        query = PointObject([0.5, 0.5])
        k = 5
        result = probabilistic_knn_threshold(database, query, k=k, tau=0.5)
        dists = np.linalg.norm(points - 0.5, axis=1)
        expected = set(np.argsort(dists)[:k])
        assert set(result.result_indices()) == expected
        assert not result.undecided

    def test_query_by_database_index_excludes_itself(self):
        result = probabilistic_knn_threshold(self.database, 0, k=2, tau=0.5)
        assert 0 not in [m.index for m in result.all_evaluated()]

    def test_rtree_candidates_give_same_matches(self):
        rtree = RTree(self.database.mbrs())
        scan_result = probabilistic_knn_threshold(self.database, self.query, k=3, tau=0.5)
        tree_result = probabilistic_knn_threshold(
            self.database, self.query, k=3, tau=0.5, rtree=rtree
        )
        assert set(scan_result.result_indices()) == set(tree_result.result_indices())

    def test_supplied_idca_with_too_small_cap_raises(self):
        idca = IDCA(self.database, k_cap=2)
        with pytest.raises(ValueError):
            probabilistic_knn_threshold(self.database, self.query, k=5, tau=0.5, idca=idca)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            probabilistic_knn_threshold(self.database, self.query, k=0, tau=0.5)
        with pytest.raises(ValueError):
            probabilistic_knn_threshold(self.database, self.query, k=1, tau=1.5)

    def test_monotonicity_in_tau(self):
        """Raising tau can only shrink the (decided) result set."""
        low = probabilistic_knn_threshold(self.database, self.query, k=3, tau=0.25)
        high = probabilistic_knn_threshold(self.database, self.query, k=3, tau=0.75)
        assert set(high.result_indices()) <= set(
            low.result_indices() + [m.index for m in low.undecided]
        )

    def test_monotonicity_in_k(self):
        """Every k-match remains a match for a larger k (given enough refinement)."""
        small = probabilistic_knn_threshold(
            self.database, self.query, k=2, tau=0.5, max_iterations=12
        )
        large = probabilistic_knn_threshold(
            self.database, self.query, k=6, tau=0.5, max_iterations=12
        )
        assert set(small.result_indices()) <= set(
            large.result_indices() + [m.index for m in large.undecided]
        )
