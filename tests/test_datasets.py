"""Tests for dataset and workload generators."""

import numpy as np
import pytest

from repro.datasets import (
    IIPSimulationConfig,
    clustered_rectangle_database,
    discrete_sample_database,
    gaussian_object_database,
    generate_query_workload,
    iip_iceberg_database,
    random_reference_object,
    target_by_mindist_rank,
    uniform_rectangle_database,
)
from repro.geometry import min_dist_arrays
from repro.uncertain import (
    BoxUniformObject,
    DiscreteObject,
    TruncatedGaussianObject,
)


class TestSyntheticUniform:
    def test_size_and_type(self):
        db = uniform_rectangle_database(200, max_extent=0.004, seed=0)
        assert len(db) == 200
        assert all(isinstance(obj, BoxUniformObject) for obj in db)

    def test_extent_bound_respected(self):
        db = uniform_rectangle_database(500, max_extent=0.004, seed=1)
        extents = db.mbrs()[..., 1] - db.mbrs()[..., 0]
        assert extents.max() <= 0.004 + 1e-12

    def test_centers_in_unit_cube(self):
        db = uniform_rectangle_database(300, max_extent=0.01, seed=2)
        centers = 0.5 * (db.mbrs()[..., 0] + db.mbrs()[..., 1])
        assert centers.min() >= 0.0 - 0.01
        assert centers.max() <= 1.0 + 0.01

    def test_reproducible_with_seed(self):
        a = uniform_rectangle_database(50, seed=7).mbrs()
        b = uniform_rectangle_database(50, seed=7).mbrs()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = uniform_rectangle_database(50, seed=7).mbrs()
        b = uniform_rectangle_database(50, seed=8).mbrs()
        assert not np.array_equal(a, b)

    def test_dimensionality_parameter(self):
        db = uniform_rectangle_database(20, dimensions=3, seed=3)
        assert db.dimensions == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            uniform_rectangle_database(0)
        with pytest.raises(ValueError):
            uniform_rectangle_database(10, max_extent=-0.1)


class TestOtherSynthetics:
    def test_clustered_database(self):
        db = clustered_rectangle_database(200, num_clusters=5, seed=4)
        assert len(db) == 200
        centers = 0.5 * (db.mbrs()[..., 0] + db.mbrs()[..., 1])
        assert centers.min() >= -1e-9 and centers.max() <= 1.0 + 1e-9

    def test_clustered_invalid_clusters(self):
        with pytest.raises(ValueError):
            clustered_rectangle_database(10, num_clusters=0)

    def test_gaussian_database(self):
        db = gaussian_object_database(50, max_std=0.01, seed=5)
        assert len(db) == 50
        assert all(isinstance(obj, TruncatedGaussianObject) for obj in db)

    def test_discrete_database(self):
        db = discrete_sample_database(30, samples_per_object=8, seed=6)
        assert len(db) == 30
        assert all(isinstance(obj, DiscreteObject) for obj in db)
        assert all(obj.points.shape == (8, 2) for obj in db)


class TestIIPSimulation:
    def test_default_matches_paper_setup(self):
        db = iip_iceberg_database(IIPSimulationConfig(num_objects=500, seed=1))
        assert len(db) == 500
        assert all(isinstance(obj, TruncatedGaussianObject) for obj in db)

    def test_max_extent_normalisation(self):
        config = IIPSimulationConfig(num_objects=400, max_extent=0.0004, seed=2)
        db = iip_iceberg_database(config)
        extents = db.mbrs()[..., 1] - db.mbrs()[..., 0]
        assert extents.max() <= config.max_extent + 1e-9
        # the largest object should actually reach (close to) the maximum
        assert extents.max() >= 0.5 * config.max_extent

    def test_extent_distribution_is_skewed(self):
        """Days-since-sighting is exponential, so most objects are small."""
        db = iip_iceberg_database(IIPSimulationConfig(num_objects=1000, seed=3))
        extents = (db.mbrs()[..., 1] - db.mbrs()[..., 0]).max(axis=1)
        assert np.median(extents) < 0.5 * extents.max()

    def test_positions_in_unit_square(self):
        db = iip_iceberg_database(IIPSimulationConfig(num_objects=300, seed=4))
        mbrs = db.mbrs()
        assert mbrs[..., 0].min() >= -0.01
        assert mbrs[..., 1].max() <= 1.01

    def test_reproducibility(self):
        a = iip_iceberg_database(IIPSimulationConfig(num_objects=100, seed=5)).mbrs()
        b = iip_iceberg_database(IIPSimulationConfig(num_objects=100, seed=5)).mbrs()
        np.testing.assert_array_equal(a, b)

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            iip_iceberg_database(IIPSimulationConfig(num_objects=0))


class TestWorkloads:
    def test_target_by_mindist_rank(self):
        db = uniform_rectangle_database(100, max_extent=0.01, seed=9)
        ref = random_reference_object(extent=0.01, seed=10)
        dists = min_dist_arrays(db.mbrs(), ref.mbr.to_array(), 2.0)
        order = np.argsort(dists, kind="stable")
        assert target_by_mindist_rank(db, ref, rank=1) == order[0]
        assert target_by_mindist_rank(db, ref, rank=10) == order[9]

    def test_target_rank_exclusion(self):
        db = uniform_rectangle_database(50, max_extent=0.01, seed=11)
        ref = random_reference_object(extent=0.01, seed=12)
        first = target_by_mindist_rank(db, ref, rank=1)
        second = target_by_mindist_rank(db, ref, rank=1, exclude={first})
        assert second != first

    def test_target_rank_validation(self):
        db = uniform_rectangle_database(10, seed=13)
        ref = random_reference_object(seed=14)
        with pytest.raises(ValueError):
            target_by_mindist_rank(db, ref, rank=0)
        with pytest.raises(ValueError):
            target_by_mindist_rank(db, ref, rank=11)

    def test_random_reference_object_extent(self):
        ref = random_reference_object(extent=0.02, seed=15)
        assert np.all(ref.mbr.extents <= 0.02 + 1e-12)
        assert ref.dimensions == 2

    def test_generate_query_workload(self):
        db = uniform_rectangle_database(200, max_extent=0.01, seed=16)
        workload = generate_query_workload(db, num_queries=5, target_rank=10, seed=17)
        assert len(workload) == 5
        for pair in workload:
            assert 0 <= pair.target_index < len(db)
            assert pair.reference.dimensions == db.dimensions

    def test_workload_reproducible(self):
        db = uniform_rectangle_database(100, max_extent=0.01, seed=18)
        a = generate_query_workload(db, num_queries=3, seed=19)
        b = generate_query_workload(db, num_queries=3, seed=19)
        assert [p.target_index for p in a] == [p.target_index for p in b]

    def test_workload_invalid_count_raises(self):
        db = uniform_rectangle_database(10, seed=20)
        with pytest.raises(ValueError):
            generate_query_workload(db, num_queries=0)
