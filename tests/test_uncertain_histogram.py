"""Unit tests for histogram-based uncertain objects."""

import numpy as np
import pytest

from repro.core import IDCA, MaxIterations
from repro.geometry import Rectangle
from repro.uncertain import (
    DecompositionTree,
    HistogramObject,
    UncertainDatabase,
)


def simple_histogram():
    """A 2-D histogram object: skewed marginal in x, uniform in y."""
    return HistogramObject(
        edges=[[0.0, 1.0, 2.0, 4.0], [0.0, 2.0]],
        masses=[[1.0, 2.0, 1.0], [1.0]],
    )


class TestConstruction:
    def test_mbr(self):
        obj = simple_histogram()
        assert obj.mbr == Rectangle.from_bounds([0.0, 0.0], [4.0, 2.0])

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            HistogramObject(edges=[[0.0, 1.0]], masses=[[1.0], [1.0]])

    def test_empty_dimensions_raise(self):
        with pytest.raises(ValueError):
            HistogramObject(edges=[], masses=[])

    def test_non_increasing_edges_raise(self):
        with pytest.raises(ValueError):
            HistogramObject(edges=[[0.0, 0.0, 1.0]], masses=[[0.5, 0.5]])

    def test_wrong_mass_count_raises(self):
        with pytest.raises(ValueError):
            HistogramObject(edges=[[0.0, 1.0, 2.0]], masses=[[1.0]])

    def test_negative_masses_raise(self):
        with pytest.raises(ValueError):
            HistogramObject(edges=[[0.0, 1.0, 2.0]], masses=[[-1.0, 2.0]])

    def test_zero_masses_raise(self):
        with pytest.raises(ValueError):
            HistogramObject(edges=[[0.0, 1.0]], masses=[[0.0]])


class TestMass:
    def test_total_mass(self):
        obj = simple_histogram()
        assert obj.mass_in(obj.mbr) == pytest.approx(1.0)

    def test_single_bin_mass(self):
        obj = simple_histogram()
        first_bin = Rectangle.from_bounds([0.0, 0.0], [1.0, 2.0])
        assert obj.mass_in(first_bin) == pytest.approx(0.25)

    def test_partial_bin_mass(self):
        obj = simple_histogram()
        half_first_bin = Rectangle.from_bounds([0.0, 0.0], [0.5, 2.0])
        assert obj.mass_in(half_first_bin) == pytest.approx(0.125)

    def test_mass_across_bins(self):
        obj = simple_histogram()
        region = Rectangle.from_bounds([0.5, 0.0], [2.0, 2.0])
        # half of bin 1 (0.125) plus all of bin 2 (0.5)
        assert obj.mass_in(region) == pytest.approx(0.625)

    def test_mass_outside(self):
        obj = simple_histogram()
        assert obj.mass_in(Rectangle.from_bounds([5.0, 0.0], [6.0, 1.0])) == 0.0

    def test_mass_scales_with_second_dimension(self):
        obj = simple_histogram()
        region = Rectangle.from_bounds([0.0, 0.0], [4.0, 1.0])
        assert obj.mass_in(region) == pytest.approx(0.5)


class TestMedianAndDecomposition:
    def test_conditional_median_splits_mass(self):
        obj = simple_histogram()
        median = obj.conditional_median(obj.mbr, axis=0)
        left = Rectangle.from_bounds([0.0, 0.0], [median, 2.0])
        assert obj.mass_in(left) == pytest.approx(0.5, abs=1e-9)

    def test_conditional_median_in_subregion(self):
        obj = simple_histogram()
        region = Rectangle.from_bounds([1.0, 0.0], [4.0, 2.0])
        median = obj.conditional_median(region, axis=0)
        left = Rectangle.from_bounds([1.0, 0.0], [median, 2.0])
        assert obj.mass_in(left) == pytest.approx(0.5 * obj.mass_in(region), abs=1e-9)

    def test_decomposition_tree_masses(self):
        obj = simple_histogram()
        tree = DecompositionTree(obj)
        for depth in (1, 2, 3, 4):
            parts = tree.partitions(depth)
            assert sum(p.probability for p in parts) == pytest.approx(1.0, abs=1e-9)
            for part in parts:
                assert abs(part.probability - obj.mass_in(part.region)) < 1e-9

    def test_samples_follow_bin_masses(self):
        obj = simple_histogram()
        rng = np.random.default_rng(0)
        samples = obj.sample(8000, rng)
        assert np.all(samples >= obj.mbr.lows)
        assert np.all(samples <= obj.mbr.highs)
        middle_bin = np.mean((samples[:, 0] >= 1.0) & (samples[:, 0] <= 2.0))
        assert middle_bin == pytest.approx(0.5, abs=0.03)

    def test_mean(self):
        obj = simple_histogram()
        # x mean: 0.25*0.5 + 0.5*1.5 + 0.25*3.0 = 1.625 ; y mean: 1.0
        np.testing.assert_allclose(obj.mean(), [1.625, 1.0])

    def test_from_samples_roundtrip(self):
        rng = np.random.default_rng(1)
        points = rng.normal(0.5, 0.1, size=(500, 2))
        obj = HistogramObject.from_samples(points, bins=6, label="fit")
        assert obj.dimensions == 2
        assert obj.mass_in(obj.mbr) == pytest.approx(1.0)
        np.testing.assert_allclose(obj.mean(), points.mean(axis=0), atol=0.05)

    def test_from_samples_invalid_input(self):
        with pytest.raises(ValueError):
            HistogramObject.from_samples(np.empty((0, 2)))
        with pytest.raises(ValueError):
            HistogramObject.from_samples(np.zeros((3, 2)), bins=0)


class TestHistogramInIDCA:
    def test_histogram_objects_work_end_to_end(self):
        """Histogram objects plug into the IDCA pipeline unchanged."""
        rng = np.random.default_rng(2)
        objects = []
        for i in range(12):
            center = rng.uniform(0.0, 1.0, size=2)
            points = center + rng.normal(0.0, 0.03, size=(200, 2))
            objects.append(HistogramObject.from_samples(points, bins=4, label=f"h{i}"))
        database = UncertainDatabase(objects)
        reference = objects[0]
        idca = IDCA(database)
        result = idca.domination_count(
            3, reference, stop=MaxIterations(3), max_iterations=3, exclude_indices=[0]
        )
        assert result.bounds.lower.sum() <= 1.0 + 1e-9
        assert result.bounds.upper.sum() >= 1.0 - 1e-9
        assert result.iterations[-1].uncertainty <= result.iterations[0].uncertainty
