"""Regenerate ``engine_equivalence.json`` from the current query implementations.

The fixture was originally produced by running this script against the seed
(pre-engine) query loops; the equivalence test replays the same scenarios
through the unified engine and asserts identical outcomes.  Re-run only when a
deliberate, understood behaviour change invalidates the snapshot::

    PYTHONPATH=src python tests/fixtures/make_engine_equivalence.py
"""

from __future__ import annotations

import json
import os

from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.queries import (
    expected_rank_ranking,
    probabilistic_inverse_ranking,
    probabilistic_knn_threshold,
    probabilistic_range_query,
    probabilistic_rknn_threshold,
)

ROUND = 12


def _matches(entries):
    return [
        {
            "index": m.index,
            "lower": round(m.probability_lower, ROUND),
            "upper": round(m.probability_upper, ROUND),
            "decision": m.decision,
            "iterations": m.iterations,
        }
        for m in sorted(entries, key=lambda m: m.index)
    ]


def _threshold(result):
    return {
        "matches": _matches(result.matches),
        "undecided": _matches(result.undecided),
        "rejected": _matches(result.rejected),
        "pruned": result.pruned,
    }


def build() -> dict:
    database = uniform_rectangle_database(num_objects=60, max_extent=0.05, seed=3)
    reference = random_reference_object(extent=0.05, seed=21, label="reference")
    fixture: dict = {
        "database": {"num_objects": 60, "max_extent": 0.05, "seed": 3},
        "reference": {"extent": 0.05, "seed": 21},
        "scenarios": {},
    }
    scenarios = fixture["scenarios"]

    scenarios["knn_external_query"] = _threshold(
        probabilistic_knn_threshold(database, reference, k=3, tau=0.5, max_iterations=6)
    )
    scenarios["knn_member_query"] = _threshold(
        probabilistic_knn_threshold(database, 7, k=2, tau=0.3, max_iterations=6)
    )
    scenarios["rknn"] = _threshold(
        probabilistic_rknn_threshold(
            database,
            reference,
            k=2,
            tau=0.5,
            max_iterations=4,
            candidate_indices=range(20),
        )
    )
    scenarios["range"] = _threshold(
        probabilistic_range_query(database, reference, epsilon=0.3, tau=0.5, max_depth=4)
    )

    ranking = expected_rank_ranking(
        database, reference, max_iterations=3, candidate_indices=range(15)
    )
    scenarios["ranking"] = [
        {
            "index": entry.index,
            "lower": round(entry.expected_rank_lower, ROUND),
            "upper": round(entry.expected_rank_upper, ROUND),
        }
        for entry in ranking.ranking
    ]

    inverse = probabilistic_inverse_ranking(database, 5, reference, max_iterations=4)
    scenarios["inverse_ranking"] = {
        "lower": [round(float(v), ROUND) for v in inverse.lower],
        "upper": [round(float(v), ROUND) for v in inverse.upper],
        "complete_count": inverse.idca_result.complete_count,
        "num_influence": inverse.idca_result.num_influence,
    }
    return fixture


if __name__ == "__main__":
    path = os.path.join(os.path.dirname(__file__), "engine_equivalence.json")
    with open(path, "w") as handle:
        json.dump(build(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
