"""Shared-memory dataset transport: export, attach, refcounting, fallback.

The contract under test (``repro/uncertain/sharedmem.py``): while a
database's export is active, pickling the database produces a lightweight
handle whose unpickle *maps* the array payload from one shared block —
bit-identical data, read-only views, memoised per process — and the last
release of the export unlinks the block.  Without an export (or with shared
memory disabled) the plain constructor-based pickle path is taken.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.datasets import uniform_rectangle_database
from repro.uncertain import (
    UncertainDatabase,
    database_transport,
    discretise_database,
    shared_memory_available,
)
from repro.uncertain import sharedmem


def _dev_shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


@pytest.fixture()
def database():
    base = uniform_rectangle_database(num_objects=40, max_extent=0.05, seed=1)
    # discrete alternatives give every object a real array payload
    return discretise_database(base, 120, np.random.default_rng(1))


def test_shared_memory_is_available_here():
    # the suite runs on Linux/macOS CI where POSIX shm exists; if this ever
    # fails the remaining tests would silently test nothing
    assert shared_memory_available()


# --------------------------------------------------------------------- #
# export / attach round trip
# --------------------------------------------------------------------- #
def test_handle_pickle_is_small_and_attach_maps(database):
    plain = pickle.dumps(database)
    export = database.share_memory()
    try:
        handled = pickle.dumps(database)
        assert len(handled) < len(plain) / 5
        assert export.payload_nbytes > 0.5 * len(plain)

        clone = pickle.loads(handled)
        assert database_transport(clone) == "shared_memory"
        assert database_transport(database) == "pickle"  # the original copy
        assert len(clone) == len(database)
        assert np.array_equal(clone.mbrs(), database.mbrs())
        for index in (0, 7, len(database) - 1):
            assert np.array_equal(clone[index].points, database[index].points)
            assert np.array_equal(clone[index].weights, database[index].weights)
    finally:
        export.close()


def test_attached_arrays_are_read_only_views(database):
    export = database.share_memory()
    try:
        clone = pickle.loads(pickle.dumps(database))
        assert not clone[0].points.flags.writeable
        with pytest.raises(ValueError):
            clone[0].points[0, 0] = 123.0
    finally:
        export.close()


def test_attachment_is_memoised_per_process(database):
    export = database.share_memory()
    try:
        payload = pickle.dumps(database)
        first = pickle.loads(payload)
        second = pickle.loads(payload)
        assert first is second
    finally:
        export.close()


def test_share_memory_is_idempotent_while_active(database):
    export = database.share_memory()
    try:
        assert database.share_memory() is export
    finally:
        export.close()
    # a closed export is replaced by a fresh one
    second = database.share_memory()
    try:
        assert second is not export
        assert second.active
    finally:
        second.close()


def test_concurrent_consumers_share_one_dev_shm_segment(database):
    """Two consumers acquiring the export map a single ``/dev/shm`` block.

    The regression guarded against: a second ``share_memory()`` call while
    an export is active must bump the refcount on the existing export, not
    export a second copy of the arrays — two services over one database
    would otherwise double the shared-memory footprint.
    """
    first = database.share_memory().acquire()
    second = database.share_memory().acquire()
    try:
        assert second is first
        name = first.handle.shm_name
        assert _dev_shm_exists(name)
        # exactly one dataset block exists for this database
        siblings = [
            entry
            for entry in os.listdir("/dev/shm")
            if entry.startswith(f"repro_{os.getpid()}_")
        ]
        assert siblings == [name]
    finally:
        first.release()
        assert _dev_shm_exists(name)  # one consumer still holds it
        second.release()
    assert not _dev_shm_exists(name)  # the last release unlinked


def test_share_memory_is_thread_safe(database):
    """Racing ``share_memory()`` calls must agree on one export."""
    import threading

    exports = []
    barrier = threading.Barrier(4)

    def worker():
        barrier.wait()
        exports.append(database.share_memory())

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    try:
        assert len({id(export) for export in exports}) == 1
    finally:
        exports[0].close()


def test_attached_database_answers_queries_identically(database):
    from repro.engine import KNNQuery, QueryEngine

    requests = [KNNQuery(3, k=3, tau=0.4, max_iterations=3)]
    expected = QueryEngine(database).evaluate_many(requests)
    export = database.share_memory()
    try:
        clone = pickle.loads(pickle.dumps(database))
        got = QueryEngine(clone).evaluate_many(requests)
        assert [
            (m.index, m.probability_lower, m.probability_upper)
            for m in got[0].all_evaluated()
        ] == [
            (m.index, m.probability_lower, m.probability_upper)
            for m in expected[0].all_evaluated()
        ]
    finally:
        export.close()


# --------------------------------------------------------------------- #
# lifetime: refcounting and unlink
# --------------------------------------------------------------------- #
def test_release_of_last_acquisition_unlinks(database):
    export = database.share_memory()
    name = export.handle.shm_name
    export.acquire()
    export.acquire()
    assert _dev_shm_exists(name)
    export.release()
    assert export.active and _dev_shm_exists(name)
    export.release()
    assert not export.active
    assert not _dev_shm_exists(name)


def test_close_is_idempotent_and_detaches(database):
    export = database.share_memory()
    export.close()
    export.close()
    assert not export.active
    assert database._shared_export is None
    with pytest.raises(RuntimeError):
        export.acquire()


def test_context_manager_counts_one_acquisition(database):
    with database.share_memory() as export:
        name = export.handle.shm_name
        assert export.active
    assert not export.active
    assert not _dev_shm_exists(name)


def test_pickle_falls_back_after_close(database):
    export = database.share_memory()
    export.close()
    clone = pickle.loads(pickle.dumps(database))
    assert database_transport(clone) == "pickle"
    assert np.array_equal(clone.mbrs(), database.mbrs())


def test_stale_handle_raises_clearly(database):
    export = database.share_memory()
    handle = export.handle
    export.close()
    # per-process memoisation would mask the staleness; simulate a fresh
    # process by clearing it for this block
    sharedmem._ATTACHMENTS.pop(handle.shm_name, None)
    with pytest.raises(RuntimeError, match="no longer exists"):
        handle.attach()


# --------------------------------------------------------------------- #
# fallback path
# --------------------------------------------------------------------- #
def test_env_kill_switch_disables_shared_memory(database, monkeypatch):
    monkeypatch.setenv(sharedmem.DISABLE_ENV, "1")
    assert not shared_memory_available()
    with pytest.raises(RuntimeError, match="unavailable"):
        database.share_memory()


def test_plain_pickle_roundtrip_preserves_mbr_cache(database):
    database.mbrs()
    clone = pickle.loads(pickle.dumps(database))
    assert clone._mbr_cache is not None
    assert np.array_equal(clone._mbr_cache, database._mbr_cache)
    assert isinstance(clone, UncertainDatabase)


# --------------------------------------------------------------------- #
# extraction policy
# --------------------------------------------------------------------- #
def test_small_arrays_stay_in_the_shell():
    # 2 tiny objects: every array is below MIN_SHARED_NBYTES, so the export
    # carries an (almost) empty block and the shell holds the data
    small = uniform_rectangle_database(num_objects=2, max_extent=0.05, seed=2)
    export = small.share_memory()
    try:
        assert export.num_arrays <= 1  # at most the (2, d, 2) MBR cache
        clone_payload = pickle.dumps(small)
        clone = pickle.loads(clone_payload)
        assert np.array_equal(clone.mbrs(), small.mbrs())
    finally:
        export.close()


def test_shared_references_stay_shared_after_attach():
    from repro.uncertain import DiscreteObject

    points = np.random.default_rng(5).random((200, 2))
    a = DiscreteObject(points)
    b = DiscreteObject(points)  # same array object on purpose
    database = UncertainDatabase([a, b])
    export = database.share_memory()
    try:
        clone = pickle.loads(pickle.dumps(database))
        assert clone[0].points is clone[1].points
    finally:
        export.close()
