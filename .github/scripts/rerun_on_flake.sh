#!/usr/bin/env bash
# Rerun-on-flake wrapper for the timing-sensitive chaos suite.
#
# Runs the given pytest command once; on failure, reruns only the failed
# tests (pytest --last-failed).  A rerun that passes means the first
# failure was a flake: the job stays green but the failure is recorded in
# a flake report (uploaded as a CI artifact) so recurring flakes stay
# visible.  A rerun that fails is a genuine regression and fails the job.
#
# Usage: rerun_on_flake.sh [env VAR=...] python -m pytest <args>
# The report prefix comes from FLAKE_REPORT_PREFIX (default "flake").
set -u
prefix="${FLAKE_REPORT_PREFIX:-flake}"

"$@" 2>&1 | tee "${prefix}-first.log"
status=${PIPESTATUS[0]}
if [ "$status" -eq 0 ]; then
    echo "clean first pass" > "${prefix}-report.txt"
    exit 0
fi

echo "first pass failed (exit $status) - rerunning the failed tests" \
    | tee "${prefix}-report.txt"
"$@" --last-failed 2>&1 | tee "${prefix}-rerun.log"
rerun=${PIPESTATUS[0]}
if [ "$rerun" -eq 0 ]; then
    {
        echo "FLAKY: first-pass failures did not reproduce on rerun"
        grep -E "^(FAILED|ERROR)" "${prefix}-first.log" || true
    } >> "${prefix}-report.txt"
    exit 0
fi
{
    echo "GENUINE: failures reproduced on rerun"
    grep -E "^(FAILED|ERROR)" "${prefix}-rerun.log" || true
} >> "${prefix}-report.txt"
exit "$rerun"
