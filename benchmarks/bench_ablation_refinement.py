"""Ablations of the refinement machinery: depth caps, axis policy, adaptivity.

These are not figures of the paper; they quantify the design decisions
DESIGN.md calls out (the kd-tree height trade-off of Section V and the
"further heuristics for the refinement process" the paper lists as future
work).
"""

from repro.experiments import (
    ablation_adaptive_refinement,
    ablation_axis_policy,
    ablation_decomposition_depth,
)


def test_ablation_decomposition_depth(benchmark, report):
    table = report(
        benchmark,
        ablation_decomposition_depth,
        depths=(1, 2, 3, 4),
        num_objects=1_000,
        num_queries=3,
        iterations=5,
        seed=0,
    )
    uncertainties = table.column("uncertainty")
    runtimes = table.column("runtime_seconds")
    # deeper target/reference decompositions yield tighter bounds at higher cost
    assert uncertainties == sorted(uncertainties, reverse=True)
    assert runtimes[-1] > runtimes[0]


def test_ablation_axis_policy(benchmark, report):
    table = report(
        benchmark,
        ablation_axis_policy,
        num_objects=1_000,
        num_queries=3,
        iterations=5,
        seed=0,
    )
    # both policies produce valid refinements; neither degenerates
    for row in table:
        assert row["uncertainty"] >= 0.0
        assert row["runtime_seconds"] > 0.0


def test_ablation_adaptive_refinement(benchmark, report):
    table = report(
        benchmark,
        ablation_adaptive_refinement,
        thresholds=(0.0, 0.1, 0.25),
        num_objects=1_000,
        num_queries=3,
        iterations=6,
        seed=0,
    )
    rows = {row["threshold"]: row for row in table}
    uniform = rows["uniform"]
    # a permissive width budget refines fewer partitions than the uniform schedule
    assert rows[0.25]["max_partitions"] <= uniform["max_partitions"]
    # and the zero budget reproduces the uniform quality
    assert rows[0.0]["uncertainty"] <= uniform["uncertainty"] + 1e-6
