"""Figure 8 — threshold predicate queries: IDCA vs MC runtime.

Paper: queries of the form "is B among the k nearest neighbours of Q with
probability tau" for k = 1..25 and tau in {0.25, 0.5, 0.75}.  Because IDCA can
stop refining as soon as the predicate is decidable, its runtime stays orders
of magnitude below the MC partner, for every k and tau.
"""

from repro.experiments import figure8_predicate_queries


def test_fig8_predicate_queries(benchmark, report):
    table = report(
        benchmark,
        figure8_predicate_queries,
        k_values=(1, 5, 10),
        taus=(0.25, 0.5, 0.75),
        num_objects=60,
        samples_per_object=50,
        num_queries=2,
        seed=0,
    )
    # IDCA beats MC for every (k, tau) combination
    for row in table:
        assert row["idca_seconds"] < row["mc_seconds"]
    # and on average by a large factor
    speedups = [row["mc_seconds"] / max(row["idca_seconds"], 1e-9) for row in table]
    assert sum(speedups) / len(speedups) > 5.0
