"""Shared configuration of the benchmark suite.

Every benchmark regenerates one figure of the paper's evaluation (or one
ablation) via the experiment functions in :mod:`repro.experiments.figures`,
using scaled-down parameters so the whole suite completes within minutes on a
laptop.  The resulting tables are printed so the rows can be compared against
the paper's plots (see ``EXPERIMENTS.md``), and each run is timed by
pytest-benchmark.
"""

from __future__ import annotations

import pytest


def run_and_report(benchmark, experiment, **kwargs):
    """Execute an experiment exactly once under pytest-benchmark and print it."""
    table = benchmark.pedantic(lambda: experiment(**kwargs), rounds=1, iterations=1)
    print()
    print(table.to_text())
    return table


@pytest.fixture
def report():
    """Fixture exposing :func:`run_and_report` to the benchmark modules."""
    return run_and_report
