"""Figure 7 — IDCA approximation quality vs fraction of the MC runtime.

Paper: on synthetic data (7a) and the IIP iceberg data (7b), the average
uncertainty per influence object drops rapidly within the first iterations
while the invested runtime stays a small fraction of what the Monte-Carlo
partner needs; only driving the uncertainty to exactly zero approaches (or
exceeds) the MC runtime.
"""

from repro.experiments import figure7_uncertainty_vs_runtime


def _check_shape(table):
    strictly_improved = 0
    for samples in set(table.column("samples")):
        rows = [r for r in table if r["samples"] == samples]
        uncertainties = [r["avg_uncertainty"] for r in rows]
        fractions = [r["fraction_of_mc_runtime"] for r in rows]
        # uncertainty decreases monotonically while the runtime fraction grows
        assert uncertainties == sorted(uncertainties, reverse=True)
        assert fractions == sorted(fractions)
        # after a few iterations IDCA has spent well below the MC runtime
        assert fractions[len(fractions) // 2] < 1.0
        if uncertainties[-1] < uncertainties[0]:
            strictly_improved += 1
    # the refinement visibly reduces the uncertainty for the evaluated sample sizes
    assert strictly_improved >= 1


def test_fig7a_synthetic(benchmark, report):
    table = report(
        benchmark,
        figure7_uncertainty_vs_runtime,
        dataset="synthetic",
        sample_sizes=(25, 50, 100),
        num_objects=60,
        max_extent=0.06,
        iterations=5,
        num_queries=2,
        seed=0,
    )
    _check_shape(table)


def test_fig7b_iip(benchmark, report):
    table = report(
        benchmark,
        figure7_uncertainty_vs_runtime,
        dataset="iip",
        sample_sizes=(25, 50, 100),
        num_objects=60,
        max_extent=0.6,
        iterations=5,
        num_queries=2,
        seed=0,
    )
    _check_shape(table)
