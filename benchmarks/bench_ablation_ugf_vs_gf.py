"""Ablation — uncertain generating function vs two regular generating functions.

The paper's Section IV-D discussion (proved in the technical report) states
that replacing the UGF by two regular generating functions evaluated at the
lower and upper probability vectors yields looser domination-count bounds.
This ablation measures the total PMF bound width and the runtime of both
constructions for growing numbers of influence objects.
"""

from repro.experiments import ablation_ugf_vs_regular_gf


def test_ablation_ugf_vs_regular_gf(benchmark, report):
    table = report(
        benchmark,
        ablation_ugf_vs_regular_gf,
        num_variables=(5, 10, 20, 40, 80),
        trials=15,
        seed=0,
    )
    for row in table:
        # the UGF bounds are never looser than the regular-GF construction
        assert row["ugf_width"] <= row["regular_width"] + 1e-9
