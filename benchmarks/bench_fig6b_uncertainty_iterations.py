"""Figure 6(b) — accumulated uncertainty per iteration: optimal vs MinMax.

Paper: the optimal criterion starts with less accumulated uncertainty after
the filter step (iteration 0) and stays below the MinMax variant in every
subsequent refinement iteration; both decrease monotonically.
"""

from repro.experiments import figure6b_uncertainty_per_iteration


def test_fig6b_uncertainty_per_iteration(benchmark, report):
    table = report(
        benchmark,
        figure6b_uncertainty_per_iteration,
        num_objects=2_000,
        num_queries=3,
        iterations=5,
        seed=0,
    )
    optimal = table.column("optimal_uncertainty")
    minmax = table.column("minmax_uncertainty")
    # both curves decrease monotonically over the iterations
    assert optimal == sorted(optimal, reverse=True)
    assert minmax == sorted(minmax, reverse=True)
    # the optimal criterion is never worse, and strictly better at iteration 0
    assert all(o <= m + 1e-9 for o, m in zip(optimal, minmax))
    assert optimal[0] <= minmax[0]
