"""Scalar pair-bounds loop vs the batched broadcast kernel.

For a seeded set of influence candidates and a target/reference partition
grid, the per-pair ``PDom`` bounds are computed twice:

* **scalar** — the seed-style triple loop: one
  :func:`repro.core.pdom_bounds_from_partitions` call per *(target partition,
  reference partition, candidate)* triple.  This path is kept in the code
  base as the reference fallback.
* **batched** — one :func:`repro.core.pdom_bounds_batch` call per partition
  count: the padded ``(num_candidates, max_partitions, d, 2)`` tensor against
  the full partition grids, one broadcast ``domination_bulk`` dispatch.

Both must produce the same bound matrices (up to ULP-level summation
re-association, checked with a tight tolerance); the sweep over candidate
decomposition depths shows how the speedup scales with the partition count.

A second, **ragged** section benchmarks the layouts the engine actually
chooses between on a mixed-depth frontier (depths cycling ``1 + i % 5``, so
per-candidate partition counts span 2..32):

* **padded** — pad every candidate to the widest count and call
  :func:`repro.core.pdom_bounds_batch` (the legacy layout, with its
  per-iteration pad copies),
* **csr-numpy** / **csr-numba** — the CSR layout consumed by
  :func:`repro.core.pdom_bounds_csr`, timed both cold (concatenation
  included) and with the per-depth-set batch cache warm (the steady-state
  hot path).  The numba row only appears when numba is importable.

Results, together with the host environment metadata
(:func:`repro.core.kernel_environment`), are written to
``BENCH_kernel.json`` (override with the ``BENCH_KERNEL_JSON`` environment
variable).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernel.py

or through the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py -q -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import pdom_bounds_batch, pdom_bounds_csr, pdom_bounds_from_partitions
from repro.core.kernels import kernel_environment, numba_available
from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.uncertain import DecompositionTree, clear_csr_cache, csr_partitions_batch

NUM_CANDIDATES = 40
GRID_DEPTH = 2  # 4 target x 4 reference partitions = 16 pairs
CANDIDATE_DEPTHS = (2, 3, 4, 5, 6)
SEED = 13
REPEATS = 3
RAGGED_DEPTH_CYCLE = 5  # mixed-depth frontier: depths 1 + (i % 5)
RAGGED_REPEATS = 5
CSR_TARGET_SPEEDUP = 1.2  # csr-numpy (cache warm) vs padded, asserted in CI


def _workload():
    database = uniform_rectangle_database(
        num_objects=NUM_CANDIDATES, max_extent=0.05, seed=SEED
    )
    target = random_reference_object(extent=0.05, seed=SEED + 1, label="target")
    reference = random_reference_object(extent=0.05, seed=SEED + 2, label="reference")
    candidate_trees = [DecompositionTree(obj) for obj in database]
    target_parts = DecompositionTree(target).partitions_arrays(GRID_DEPTH)
    reference_parts = DecompositionTree(reference).partitions_arrays(GRID_DEPTH)
    return candidate_trees, target_parts, reference_parts


def _scalar_matrices(parts, target_regions, reference_regions):
    num_pairs = target_regions.shape[0] * reference_regions.shape[0]
    lower = np.empty((num_pairs, len(parts)))
    upper = np.empty((num_pairs, len(parts)))
    pair = 0
    for b_idx in range(target_regions.shape[0]):
        for r_idx in range(reference_regions.shape[0]):
            for c_idx, (regions, masses) in enumerate(parts):
                lower[pair, c_idx], upper[pair, c_idx] = pdom_bounds_from_partitions(
                    regions, masses, target_regions[b_idx], reference_regions[r_idx]
                )
            pair += 1
    return lower, upper


def _batched_matrices(trees, depth, parts, target_regions, reference_regions):
    counts = np.array([masses.shape[0] for _, masses in parts], dtype=int)
    pad_to = int(counts.max())
    stacked_regions = np.stack(
        [tree.partitions_arrays(depth, pad_to=pad_to)[0] for tree in trees]
    )
    stacked_masses = np.stack(
        [tree.partitions_arrays(depth, pad_to=pad_to)[1] for tree in trees]
    )
    return pdom_bounds_batch(
        stacked_regions,
        stacked_masses,
        target_regions,
        reference_regions,
        partition_counts=counts,
    )


def _padded_ragged(trees, depths, target_regions, reference_regions):
    """The legacy layout on a mixed-depth frontier: pad copies + dense kernel."""
    counts = np.array(
        [tree.partitions_arrays(depth)[1].shape[0] for tree, depth in zip(trees, depths)],
        dtype=int,
    )
    pad_to = int(counts.max())
    stacked_regions = np.stack(
        [
            tree.partitions_arrays(depth, pad_to=pad_to)[0]
            for tree, depth in zip(trees, depths)
        ]
    )
    stacked_masses = np.stack(
        [
            tree.partitions_arrays(depth, pad_to=pad_to)[1]
            for tree, depth in zip(trees, depths)
        ]
    )
    return pdom_bounds_batch(
        stacked_regions,
        stacked_masses,
        target_regions,
        reference_regions,
        partition_counts=counts,
    )


def _csr_ragged(trees, depths, target_regions, reference_regions, backend):
    """CSR layout: one cached concatenation + the selected kernel backend."""
    batch = csr_partitions_batch(trees, depths)
    return pdom_bounds_csr(
        batch.regions,
        batch.masses,
        batch.offsets,
        target_regions,
        reference_regions,
        backend=backend,
    )


def _ragged_section(trees, target_regions, reference_regions) -> dict:
    """Padded vs CSR (per backend, cold and cache-warm) on mixed depths."""
    depths = [1 + (i % RAGGED_DEPTH_CYCLE) for i in range(len(trees))]
    counts = [
        tree.partitions_arrays(depth)[1].shape[0] for tree, depth in zip(trees, depths)
    ]

    padded_best = np.inf
    for _ in range(RAGGED_REPEATS):
        start = time.perf_counter()
        padded_lower, padded_upper = _padded_ragged(
            trees, depths, target_regions, reference_regions
        )
        padded_best = min(padded_best, time.perf_counter() - start)

    backends = ["numpy"] + (["numba"] if numba_available() else [])
    rows = [
        {
            "layout": "padded",
            "backend": "numpy",
            "csr_cache": None,
            "seconds": padded_best,
            "speedup_vs_padded": 1.0,
        }
    ]
    for backend in backends:
        # warm-up: with numba this also absorbs the one-off JIT compilation
        _csr_ragged(trees, depths, target_regions, reference_regions, backend)

        cold_best = np.inf
        for _ in range(RAGGED_REPEATS):
            clear_csr_cache()
            start = time.perf_counter()
            cold_lower, cold_upper = _csr_ragged(
                trees, depths, target_regions, reference_regions, backend
            )
            cold_best = min(cold_best, time.perf_counter() - start)

        warm_best = np.inf
        _csr_ragged(trees, depths, target_regions, reference_regions, backend)
        for _ in range(RAGGED_REPEATS):
            start = time.perf_counter()
            warm_lower, warm_upper = _csr_ragged(
                trees, depths, target_regions, reference_regions, backend
            )
            warm_best = min(warm_best, time.perf_counter() - start)

        max_abs_diff = float(
            max(
                np.abs(warm_lower - padded_lower).max(),
                np.abs(warm_upper - padded_upper).max(),
                np.abs(cold_lower - padded_lower).max(),
                np.abs(cold_upper - padded_upper).max(),
            )
        )
        if max_abs_diff > 1e-12:
            raise AssertionError(
                f"csr-{backend} diverged from the padded kernel: "
                f"max |diff| = {max_abs_diff:.3e}"
            )
        for cache, seconds in (("cold", cold_best), ("warm", warm_best)):
            rows.append(
                {
                    "layout": "csr",
                    "backend": backend,
                    "csr_cache": cache,
                    "seconds": seconds,
                    "speedup_vs_padded": padded_best / max(seconds, 1e-12),
                    "max_abs_diff_vs_padded": max_abs_diff,
                }
            )
    return {
        "workload": {
            "num_candidates": len(trees),
            "depth_cycle": RAGGED_DEPTH_CYCLE,
            "partition_counts": {
                "min": int(min(counts)),
                "max": int(max(counts)),
                "total": int(sum(counts)),
            },
            "num_pairs": int(target_regions.shape[0] * reference_regions.shape[0]),
            "repeats": RAGGED_REPEATS,
            "target_speedup": CSR_TARGET_SPEEDUP,
        },
        "rows": rows,
    }


def run_benchmark() -> dict:
    """Time both paths across candidate depths and return the comparison."""
    trees, (target_regions, _), (reference_regions, _) = _workload()
    rows = []
    for depth in CANDIDATE_DEPTHS:
        parts = [tree.partitions_arrays(depth) for tree in trees]

        scalar_best = np.inf
        for _ in range(REPEATS):
            start = time.perf_counter()
            scalar_lower, scalar_upper = _scalar_matrices(
                parts, target_regions, reference_regions
            )
            scalar_best = min(scalar_best, time.perf_counter() - start)

        batch_best = np.inf
        for _ in range(REPEATS):
            start = time.perf_counter()
            batch_lower, batch_upper = _batched_matrices(
                trees, depth, parts, target_regions, reference_regions
            )
            batch_best = min(batch_best, time.perf_counter() - start)

        max_abs_diff = float(
            max(
                np.abs(batch_lower - scalar_lower).max(),
                np.abs(batch_upper - scalar_upper).max(),
            )
        )
        if max_abs_diff > 1e-12:
            # correctness gate shared by the CLI and the pytest entry point:
            # the kernel may differ from the scalar loop by summation
            # re-association ULPs only
            raise AssertionError(
                f"batched kernel diverged from the scalar loop at depth {depth}: "
                f"max |diff| = {max_abs_diff:.3e}"
            )
        rows.append(
            {
                "candidate_depth": depth,
                "max_partitions": int(max(m.shape[0] for _, m in parts)),
                "num_pairs": int(target_regions.shape[0] * reference_regions.shape[0]),
                "scalar_seconds": scalar_best,
                "batch_seconds": batch_best,
                "speedup": scalar_best / max(batch_best, 1e-12),
                "max_abs_diff": max_abs_diff,
            }
        )
    return {
        "workload": {
            "num_candidates": NUM_CANDIDATES,
            "grid_depth": GRID_DEPTH,
            "candidate_depths": list(CANDIDATE_DEPTHS),
            "seed": SEED,
            "repeats": REPEATS,
        },
        "rows": rows,
        "ragged": _ragged_section(trees, target_regions, reference_regions),
        "environment": kernel_environment(),
    }


def _write_report(report: dict) -> str:
    path = os.environ.get("BENCH_KERNEL_JSON", "BENCH_kernel.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    return path


def test_batched_kernel_beats_scalar_loop():
    report = run_benchmark()
    path = _write_report(report)
    print()
    for row in report["rows"]:
        print(
            f"depth {row['candidate_depth']}: scalar {row['scalar_seconds'] * 1e3:.1f} ms  "
            f"batch {row['batch_seconds'] * 1e3:.1f} ms  "
            f"speedup {row['speedup']:.1f}x"
        )
    for row in report["ragged"]["rows"]:
        cache = f" ({row['csr_cache']})" if row["csr_cache"] else ""
        print(
            f"ragged {row['layout']}-{row['backend']}{cache}: "
            f"{row['seconds'] * 1e3:.2f} ms  "
            f"{row['speedup_vs_padded']:.2f}x vs padded"
        )
    print(f"-> {path}")
    # correctness is asserted inside run_benchmark; here only the speed claims
    for row in report["rows"]:
        assert row["batch_seconds"] < row["scalar_seconds"]
    warm_numpy = next(
        row
        for row in report["ragged"]["rows"]
        if row["layout"] == "csr"
        and row["backend"] == "numpy"
        and row["csr_cache"] == "warm"
    )
    assert warm_numpy["speedup_vs_padded"] >= CSR_TARGET_SPEEDUP, (
        f"csr-numpy (cache warm) only {warm_numpy['speedup_vs_padded']:.2f}x "
        f"over padded, target {CSR_TARGET_SPEEDUP}x"
    )


if __name__ == "__main__":
    result = run_benchmark()
    path = _write_report(result)
    print(json.dumps(result, indent=1))
    print(f"wrote {path}")
