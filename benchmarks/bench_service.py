"""Persistent QueryService vs a pool-per-batch executor, batch by batch.

PR 3's parallel executor tears its process pool down after every
``evaluate_many`` call, so a stream of small batches pays pool startup and
per-worker engine rebuild once *per batch* (the overhead recorded in
``BENCH_parallel.json`` on single-core machines).  The
:class:`~repro.engine.QueryService` pays both once per process lifetime and
additionally ships the dataset through shared memory.  This benchmark
replays the same seeded kNN stream as ``bench_engine_parallel.py``, split
into consecutive small batches, through three paths:

* **serial** — the single-process shared-cache baseline (also the
  determinism reference);
* **pool-per-batch** — ``evaluate_many`` with ``ExecutorConfig`` per batch:
  every batch spawns and reaps its own pool;
* **service** — one :class:`QueryService` for the whole stream: batches go
  through the request queue onto the persistent pool.

The per-batch latency lists are the dispatch-overhead curve; the means are
the headline comparison.  Determinism (every path bit-identical to serial)
is asserted unconditionally; the overhead reduction (service mean per-batch
latency below the pool-per-batch mean) is asserted only on machines with at
least :data:`MIN_CPUS_FOR_GATE` CPUs, mirroring the PR-3 gating — although
the reduction is typically visible even single-core, since pool startup is
pure overhead.  Measured numbers go to ``BENCH_service.json`` (override
with the ``BENCH_SERVICE_JSON`` environment variable).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py

or through the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.kernels import kernel_environment
from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import ExecutorConfig, KNNQuery, QueryEngine, QueryService

NUM_OBJECTS = 150
NUM_DISTINCT_QUERIES = 8
NUM_BATCHES = 8
BATCH_SIZE = 4
K = 3
TAU = 0.5
MAX_ITERATIONS = 4
SEED = 7
WORKERS = 2
MIN_CPUS_FOR_GATE = 4


def _workload():
    database = uniform_rectangle_database(
        num_objects=NUM_OBJECTS, max_extent=0.05, seed=0
    )
    rng = np.random.default_rng(SEED)
    distinct = [
        random_reference_object(extent=0.05, rng=rng, label=f"query-{i}")
        for i in range(NUM_DISTINCT_QUERIES)
    ]
    stream = [
        distinct[i]
        for i in rng.integers(0, NUM_DISTINCT_QUERIES, size=NUM_BATCHES * BATCH_SIZE)
    ]
    requests = [
        KNNQuery(query, k=K, tau=TAU, max_iterations=MAX_ITERATIONS) for query in stream
    ]
    batches = [
        requests[i : i + BATCH_SIZE] for i in range(0, len(requests), BATCH_SIZE)
    ]
    return database, batches


def _snapshot(results) -> list:
    """Full per-query result snapshot — bit-level comparison material."""
    snap = []
    for result in results:
        snap.append(
            [
                (m.index, m.probability_lower, m.probability_upper, m.decision,
                 m.iterations, m.sequence)
                for bucket in (result.matches, result.undecided, result.rejected)
                for m in bucket
            ]
            + [result.pruned]
        )
    return snap


def run_benchmark() -> dict:
    """Measure per-batch dispatch latency: pool-per-batch vs persistent."""
    database, batches = _workload()

    serial_engine = QueryEngine(database)
    serial_latencies = []
    baseline = []
    for batch in batches:
        start = time.perf_counter()
        results = serial_engine.evaluate_many(batch)
        serial_latencies.append(time.perf_counter() - start)
        baseline.append(_snapshot(results))

    config = ExecutorConfig(mode="process", workers=WORKERS, chunking="affinity")

    per_batch_engine = QueryEngine(database)
    per_batch_latencies = []
    per_batch_identical = True
    for index, batch in enumerate(batches):
        start = time.perf_counter()
        results = per_batch_engine.evaluate_many(batch, executor=config)
        per_batch_latencies.append(time.perf_counter() - start)
        per_batch_identical &= _snapshot(results) == baseline[index]

    service_latencies = []
    service_identical = True
    with QueryService(QueryEngine(database), config) as service:
        transport = service.transport
        payload_nbytes = service.payload_nbytes
        for index, batch in enumerate(batches):
            start = time.perf_counter()
            results = service.evaluate_many(batch)
            service_latencies.append(time.perf_counter() - start)
            service_identical &= _snapshot(results) == baseline[index]
        pool_pids = service.worker_pids

    per_batch_mean = sum(per_batch_latencies) / len(per_batch_latencies)
    service_mean = sum(service_latencies) / len(service_latencies)
    return {
        "environment": kernel_environment(),
        "workload": {
            "num_objects": NUM_OBJECTS,
            "num_batches": NUM_BATCHES,
            "batch_size": BATCH_SIZE,
            "distinct_queries": NUM_DISTINCT_QUERIES,
            "k": K,
            "tau": TAU,
            "max_iterations": MAX_ITERATIONS,
            "seed": SEED,
            "workers": WORKERS,
        },
        "cpu_count": os.cpu_count(),
        "serial": {
            "per_batch_seconds": serial_latencies,
            "mean_batch_seconds": sum(serial_latencies) / len(serial_latencies),
        },
        "pool_per_batch": {
            "per_batch_seconds": per_batch_latencies,
            "mean_batch_seconds": per_batch_mean,
            "results_identical": per_batch_identical,
        },
        "service": {
            "per_batch_seconds": service_latencies,
            "mean_batch_seconds": service_mean,
            "results_identical": service_identical,
            "transport": transport,
            "payload_nbytes": payload_nbytes,
            "distinct_worker_pids": len(pool_pids),
        },
        "dispatch_overhead_reduction": per_batch_mean / max(service_mean, 1e-12),
        "results_identical": per_batch_identical and service_identical,
        "min_cpus_for_gate": MIN_CPUS_FOR_GATE,
        "note": (
            "pool_per_batch pays pool startup per batch; the service pays it "
            "once — the reduction gate applies on >= 4-CPU machines, where "
            "worker scheduling noise cannot mask it"
        ),
    }


def _write_report(report: dict) -> str:
    path = os.environ.get("BENCH_SERVICE_JSON", "BENCH_service.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    return path


def test_service_dispatch_overhead_drops():
    report = run_benchmark()
    path = _write_report(report)
    print()
    print(
        f"cpus {report['cpu_count']}  workers {WORKERS}  "
        f"transport {report['service']['transport']}"
    )
    for name in ("serial", "pool_per_batch", "service"):
        print(f"{name:15s} mean batch {report[name]['mean_batch_seconds'] * 1e3:8.1f} ms")
    print(
        f"dispatch overhead reduction {report['dispatch_overhead_reduction']:.2f}x"
        f"  -> {path}"
    )
    # determinism is unconditional
    assert report["results_identical"]
    # one pool served the whole stream
    assert report["service"]["distinct_worker_pids"] <= WORKERS
    # the overhead reduction gate mirrors the PR-3 speedup gate: only on
    # machines with enough CPUs for scheduling noise not to dominate
    if (report["cpu_count"] or 1) >= MIN_CPUS_FOR_GATE:
        assert report["dispatch_overhead_reduction"] > 1.0, (
            "persistent service dispatched batches slower than pool-per-batch"
        )
    else:
        print(
            f"only {report['cpu_count']} CPU(s) - skipping the overhead "
            "reduction assertion (recorded for information)"
        )


if __name__ == "__main__":
    result = run_benchmark()
    path = _write_report(result)
    print(json.dumps(result, indent=1))
    print(f"wrote {path}")
