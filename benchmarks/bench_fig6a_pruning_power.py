"""Figure 6(a) — candidates remaining after spatial pruning: optimal vs MinMax.

Paper: on 10,000 objects with extents up to 0.01 the optimal decision
criterion prunes about 20% more candidates than the MinDist/MaxDist criterion,
and the candidate count grows with the object extent for both.
"""

from repro.experiments import figure6a_pruning_power


def test_fig6a_pruning_power(benchmark, report):
    table = report(
        benchmark,
        figure6a_pruning_power,
        max_extents=(0.001, 0.0025, 0.005, 0.0075, 0.01),
        num_objects=2_000,
        num_queries=5,
        seed=0,
    )
    optimal = table.column("optimal_candidates")
    minmax = table.column("minmax_candidates")
    # the optimal criterion never leaves more candidates than MinMax ...
    assert all(o <= m for o, m in zip(optimal, minmax))
    # ... and wins by a clear margin for the larger extents
    assert optimal[-1] < minmax[-1]
    # candidate counts grow with the maximum object extent
    assert optimal[-1] > optimal[0]
