"""Warm-start value of the persistent bounds store, and what claims save.

Two questions, one number each:

* **restart cost** — a service that persists its shared bounds store to
  disk (``bounds_store_path``) and is then restarted serves its first
  batch *warm*: every column the previous incarnation published is a
  shared hit instead of a recompute.  The benchmark measures first-batch
  latency cold (fresh store) vs warm (respawned over the same file) and
  gates the warm hit rate ``>= 0.5`` plus bit-identity unconditionally —
  both are cache-content properties, independent of machine speed;
* **duplicate compute** — without claim leases, workers that need the
  same column at the same time all compute it and the store discards all
  but the first publish (the ``shared_duplicates`` counter: each one is a
  wasted column computation).  With claims, a worker that finds a live
  claim briefly waits for the holder's publish instead
  (``claim_waits``).  Duplicate counts depend on scheduling, so they are
  recorded, not gated.

Measured numbers go to ``BENCH_warmstart.json`` (override with the
``BENCH_WARMSTART_JSON`` environment variable).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_warmstart.py

or through the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_warmstart.py -q -s
"""

from __future__ import annotations

import json
import os
import tempfile
import time

import numpy as np

from repro.core.kernels import kernel_environment
from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import ExecutorConfig, KNNQuery, QueryEngine, QueryService
from repro.engine.boundstore import bound_store_available

NUM_OBJECTS = 150
NUM_DISTINCT_QUERIES = 8
REPEATS_PER_BATCH = 3
K = 3
TAU = 0.5
MAX_ITERATIONS = 4
SEED = 29
WORKERS = 2
CLAIM_WORKERS = 4
TARGET_HIT_RATE = 0.5


def _workload():
    database = uniform_rectangle_database(
        num_objects=NUM_OBJECTS, max_extent=0.05, seed=0
    )
    rng = np.random.default_rng(SEED)
    distinct = [
        random_reference_object(extent=0.05, rng=rng, label=f"query-{i}")
        for i in range(NUM_DISTINCT_QUERIES)
    ]
    batch = [
        KNNQuery(query, k=K, tau=TAU, max_iterations=MAX_ITERATIONS)
        for _ in range(REPEATS_PER_BATCH)
        for query in distinct
    ]
    return database, batch


def _snapshot(results) -> list:
    """Full per-query result snapshot — bit-level comparison material."""
    snap = []
    for result in results:
        snap.append(
            [
                (m.index, m.probability_lower, m.probability_upper, m.decision,
                 m.iterations, m.sequence)
                for bucket in (result.matches, result.undecided, result.rejected)
                for m in bucket
            ]
            + [result.pruned]
        )
    return snap


def _one_batch(database, batch, baseline, **service_kwargs):
    """One service incarnation, one batch; returns the measured record."""
    with QueryService(
        QueryEngine(database), ExecutorConfig(workers=WORKERS), **service_kwargs
    ) as service:
        warm_started = service.store_warm_started
        start = time.perf_counter()
        results = service.evaluate_many(batch)
        elapsed = time.perf_counter() - start
        report = service.last_batch_report
        store_stats = service.bound_store_stats()
        return {
            "store": service.shared_bounds,
            "warm_started": warm_started,
            "first_batch_seconds": elapsed,
            "shared_hits": report.shared_hits,
            "shared_misses": report.shared_misses,
            "shared_publishes": report.shared_publishes,
            "shared_hit_rate": report.shared_hit_rate,
            "shared_duplicates": report.shared_duplicates,
            "claim_waits": report.claim_waits,
            "results_identical": _snapshot(results) == baseline,
            "store_stats": store_stats,
        }


def _claims_comparison(database, batch, baseline) -> dict:
    """Cold batches with and without claim leases, duplicates recorded."""
    comparison = {}
    for label, claims in (("with_claims", True), ("without_claims", False)):
        config = ExecutorConfig(workers=CLAIM_WORKERS, chunking="contiguous")
        with QueryService(
            QueryEngine(database), config, store_claims=claims
        ) as service:
            start = time.perf_counter()
            results = service.evaluate_many(batch)
            elapsed = time.perf_counter() - start
            report = service.last_batch_report
            comparison[label] = {
                "cold_batch_seconds": elapsed,
                "shared_publishes": report.shared_publishes,
                "duplicate_computes": report.shared_duplicates,
                "claim_waits": report.claim_waits,
                "claim_steals": report.claim_steals,
                "results_identical": _snapshot(results) == baseline,
            }
    return comparison


def run_benchmark() -> dict:
    """Measure cold vs warm restart latency and claim-lease effects."""
    database, batch = _workload()

    start = time.perf_counter()
    baseline = _snapshot(QueryEngine(database).evaluate_many(batch))
    serial_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-warmstart-") as tmp:
        path = os.path.join(tmp, "bounds.store")
        cold = _one_batch(database, batch, baseline, bounds_store_path=path)
        warm = _one_batch(database, batch, baseline, bounds_store_path=path)

    claims = _claims_comparison(database, batch, baseline)

    return {
        "environment": kernel_environment(),
        "workload": {
            "num_objects": NUM_OBJECTS,
            "distinct_queries": NUM_DISTINCT_QUERIES,
            "repeats_per_batch": REPEATS_PER_BATCH,
            "batch_size": NUM_DISTINCT_QUERIES * REPEATS_PER_BATCH,
            "k": K,
            "tau": TAU,
            "max_iterations": MAX_ITERATIONS,
            "seed": SEED,
            "workers": WORKERS,
            "claim_workers": CLAIM_WORKERS,
        },
        "cpu_count": os.cpu_count(),
        "serial_batch_seconds": serial_seconds,
        "cold": cold,
        "warm": warm,
        "warm_speedup": cold["first_batch_seconds"]
        / max(warm["first_batch_seconds"], 1e-12),
        "claims": claims,
        "store_available": bound_store_available(),
        "target_hit_rate": TARGET_HIT_RATE,
        "results_identical": (
            cold["results_identical"]
            and warm["results_identical"]
            and all(entry["results_identical"] for entry in claims.values())
        ),
        "note": (
            "warm numbers come from a second service incarnation attached "
            "to the first one's persisted store file; duplicate_computes "
            "counts columns computed by several workers and discarded at "
            "publish time — scheduling-dependent, recorded not gated"
        ),
    }


def _write_report(report: dict) -> str:
    path = os.environ.get("BENCH_WARMSTART_JSON", "BENCH_warmstart.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    return path


def test_warm_start_serves_first_batch_from_persisted_store():
    report = run_benchmark()
    path = _write_report(report)
    print()
    print(
        f"cpus {report['cpu_count']}  "
        f"cold {report['cold']['first_batch_seconds'] * 1e3:8.1f} ms  "
        f"warm {report['warm']['first_batch_seconds'] * 1e3:8.1f} ms  "
        f"({report['warm_speedup']:.2f}x)  "
        f"warm hit rate {report['warm']['shared_hit_rate']:.2f}"
    )
    for label, entry in report["claims"].items():
        print(
            f"{label:15s} duplicates {entry['duplicate_computes']:4d}  "
            f"claim waits {entry['claim_waits']:4d}  "
            f"cold batch {entry['cold_batch_seconds'] * 1e3:8.1f} ms"
        )
    print(f"-> {path}")
    # determinism is unconditional, for every configuration
    assert report["results_identical"]
    if not report["store_available"]:
        print("shared bounds store unavailable here - warm-start gates skipped")
        return
    # the restart contract: the second incarnation adopted the file and
    # served the first batch mostly from it — cache content, not timing
    assert not report["cold"]["warm_started"]
    assert report["cold"]["shared_publishes"] > 0
    assert report["warm"]["warm_started"]
    assert report["warm"]["shared_hit_rate"] >= TARGET_HIT_RATE, (
        f"warm first-batch hit rate {report['warm']['shared_hit_rate']:.2f} "
        f"below {TARGET_HIT_RATE}"
    )
    assert report["warm"]["store_stats"]["rejected_store"] is None


if __name__ == "__main__":
    result = run_benchmark()
    path = _write_report(result)
    print(json.dumps(result, indent=1))
    print(f"wrote {path}")
