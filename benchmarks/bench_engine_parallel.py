"""Parallel batch execution vs the serial shared-cache batch path.

The seeded 20-query kNN stream of ``bench_engine_batch.py`` (drawn with
repetition from 8 distinct query objects over a 150-object database) is
evaluated through ``QueryEngine.evaluate_many``:

* **serial** — today's single-process path: one shared refinement context
  serves the whole stream, so repeated queries are nearly free;
* **process, workers = 1 / 2 / 4** — the batch is partitioned with the
  affinity strategy (requests sharing a query object stay on one worker,
  preserving cache locality), each worker rebuilds worker-local caches from
  the engine payload shipped once through the pool initializer, and the
  chunk results are merged back into request order.

Every mode must return results bit-identical to the serial path — the
determinism contract of ``repro/engine/executor.py`` — which this benchmark
asserts on the full result snapshots, not just the match sets.

Speedup is physical: it requires actual cores.  The report records
``cpu_count`` and the per-worker-count scaling curve; the ≥2.5x target at 4
workers only applies on machines with at least 4 CPUs (single-core
containers will measure parallel overhead instead, which is still useful —
it bounds the cost of the process-pool machinery).  The measured numbers are
written to ``BENCH_parallel.json`` (override with the ``BENCH_PARALLEL_JSON``
environment variable).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_parallel.py

or through the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_parallel.py -q -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.kernels import kernel_environment
from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import ExecutorConfig, KNNQuery, QueryEngine

NUM_OBJECTS = 150
NUM_DISTINCT_QUERIES = 8
STREAM_LENGTH = 20
K = 3
TAU = 0.5
MAX_ITERATIONS = 4
SEED = 7
WORKER_COUNTS = (1, 2, 4)
TARGET_SPEEDUP_AT_4 = 2.5


def _workload():
    database = uniform_rectangle_database(
        num_objects=NUM_OBJECTS, max_extent=0.05, seed=0
    )
    rng = np.random.default_rng(SEED)
    distinct = [
        random_reference_object(extent=0.05, rng=rng, label=f"query-{i}")
        for i in range(NUM_DISTINCT_QUERIES)
    ]
    stream = [distinct[i] for i in rng.integers(0, NUM_DISTINCT_QUERIES, size=STREAM_LENGTH)]
    return database, stream


def _snapshot(results) -> list:
    """Full per-query result snapshot — bit-level comparison material."""
    snap = []
    for result in results:
        snap.append(
            [
                (m.index, m.probability_lower, m.probability_upper, m.decision,
                 m.iterations, m.sequence)
                for bucket in (result.matches, result.undecided, result.rejected)
                for m in bucket
            ]
            + [result.pruned]
        )
    return snap


def run_benchmark() -> dict:
    """Measure the serial baseline and the 1/2/4-worker scaling curve."""
    database, stream = _workload()
    requests = [
        KNNQuery(query, k=K, tau=TAU, max_iterations=MAX_ITERATIONS) for query in stream
    ]

    serial_engine = QueryEngine(database)
    start = time.perf_counter()
    serial_results = serial_engine.evaluate_many(requests)
    serial_seconds = time.perf_counter() - start
    baseline = _snapshot(serial_results)

    runs = {}
    identical = True
    for workers in WORKER_COUNTS:
        engine = QueryEngine(database)
        config = ExecutorConfig(mode="process", workers=workers, chunking="affinity")
        start = time.perf_counter()
        results = engine.evaluate_many(requests, executor=config)
        seconds = time.perf_counter() - start
        same = _snapshot(results) == baseline
        identical = identical and same
        report = engine.last_batch_report
        runs[str(workers)] = {
            "seconds": seconds,
            "speedup_vs_serial": serial_seconds / max(seconds, 1e-12),
            "results_identical": same,
            "report": report.to_dict(),
        }

    return {
        "environment": kernel_environment(),
        "workload": {
            "num_objects": NUM_OBJECTS,
            "stream_length": STREAM_LENGTH,
            "distinct_queries": NUM_DISTINCT_QUERIES,
            "k": K,
            "tau": TAU,
            "max_iterations": MAX_ITERATIONS,
            "seed": SEED,
        },
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "runs": runs,
        "results_identical": identical,
        "target_speedup_at_4_workers": TARGET_SPEEDUP_AT_4,
        "note": (
            "speedup requires physical cores; on machines with fewer than 4 "
            "CPUs the 4-worker row measures pool overhead, not scaling"
        ),
    }


def _write_report(report: dict) -> str:
    path = os.environ.get("BENCH_PARALLEL_JSON", "BENCH_parallel.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    return path


def test_parallel_batch_matches_serial_and_scales():
    report = run_benchmark()
    path = _write_report(report)
    print()
    print(f"cpus {report['cpu_count']}  serial {report['serial_seconds']:.2f}s")
    for workers, run in report["runs"].items():
        print(
            f"workers={workers}  {run['seconds']:.2f}s  "
            f"speedup {run['speedup_vs_serial']:.2f}x  "
            f"identical={run['results_identical']}  -> {path}"
        )
    # determinism is unconditional
    assert report["results_identical"]
    # scaling is conditional on hardware actually having the cores
    if (report["cpu_count"] or 1) >= 4:
        assert (
            report["runs"]["4"]["speedup_vs_serial"] >= TARGET_SPEEDUP_AT_4
        ), f"expected >= {TARGET_SPEEDUP_AT_4}x at 4 workers on a >=4-core machine"
    else:
        print(
            f"only {report['cpu_count']} CPU(s) available - "
            "skipping the speedup assertion (scaling needs real cores)"
        )


if __name__ == "__main__":
    result = run_benchmark()
    path = _write_report(result)
    print(json.dumps(result, indent=1))
    print(f"wrote {path}")
