"""Duplicate-computation elimination by the cross-worker shared bounds store.

With ``w`` workers and no shared store, a stream of repeated batches makes
every worker recompute the bounds columns its chunks need — worker-local
memos cannot help across batches for ad-hoc query objects, whose identity
changes with every pickled copy.  The PR-5 shared bounds store
(``repro/engine/boundstore.py``) publishes each column once and serves it to
every worker of every later batch.

This benchmark replays one batch of kNN requests (8 distinct ad-hoc query
objects, repeated 3x within the batch) for several **rounds** through a
:class:`~repro.engine.QueryService` at workers=1/2/4, with the store on and
off, plus the ``REPRO_DISABLE_SHARED_MEMORY=1`` fallback path, and records:

* **determinism** — every round of every configuration bit-identical to the
  serial path (asserted unconditionally, the PR-5 acceptance criterion);
* **shared-store hit rate** on rounds 2+ (``shared_hits / (shared_hits +
  shared_misses)`` — of the lookups the worker-local tier could not serve,
  the fraction the store absorbed).  Gated ``>= 0.5`` unconditionally: the
  rate measures cache content, not scheduling, so it holds on any machine;
* **repeated-round latency** — mean round latency on rounds 2+, store on
  vs off.  The reduction is asserted only on machines with at least
  :data:`MIN_CPUS_FOR_GATE` CPUs, mirroring the PR-3/PR-4 gating: on a
  single-core container the workers serialise anyway, so the kernel time
  the store saves is hidden behind scheduling noise.

Measured numbers go to ``BENCH_boundstore.json`` (override with the
``BENCH_BOUNDSTORE_JSON`` environment variable).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_boundstore.py

or through the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_boundstore.py -q -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.kernels import kernel_environment
from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import ExecutorConfig, KNNQuery, QueryEngine, QueryService

NUM_OBJECTS = 150
NUM_DISTINCT_QUERIES = 8
REPEATS_PER_BATCH = 3
NUM_ROUNDS = 3
K = 3
TAU = 0.5
MAX_ITERATIONS = 4
SEED = 17
WORKER_COUNTS = (1, 2, 4)
MIN_CPUS_FOR_GATE = 4
TARGET_HIT_RATE = 0.5


def _workload():
    database = uniform_rectangle_database(
        num_objects=NUM_OBJECTS, max_extent=0.05, seed=0
    )
    rng = np.random.default_rng(SEED)
    distinct = [
        random_reference_object(extent=0.05, rng=rng, label=f"query-{i}")
        for i in range(NUM_DISTINCT_QUERIES)
    ]
    batch = [
        KNNQuery(query, k=K, tau=TAU, max_iterations=MAX_ITERATIONS)
        for _ in range(REPEATS_PER_BATCH)
        for query in distinct
    ]
    return database, batch


def _snapshot(results) -> list:
    """Full per-query result snapshot — bit-level comparison material."""
    snap = []
    for result in results:
        snap.append(
            [
                (m.index, m.probability_lower, m.probability_upper, m.decision,
                 m.iterations, m.sequence)
                for bucket in (result.matches, result.undecided, result.rejected)
                for m in bucket
            ]
            + [result.pruned]
        )
    return snap


def _run_service_rounds(database, batch, baseline, workers, shared_bounds):
    """One service, NUM_ROUNDS identical batches; returns the measured curve."""
    config = ExecutorConfig(workers=workers, shared_bounds=shared_bounds)
    latencies, rounds, identical = [], [], True
    with QueryService(QueryEngine(database), config) as service:
        store_active = service.shared_bounds
        for _ in range(NUM_ROUNDS):
            start = time.perf_counter()
            results = service.evaluate_many(batch)
            latencies.append(time.perf_counter() - start)
            identical &= _snapshot(results) == baseline
            report = service.last_batch_report
            rounds.append(
                {
                    "shared_hits": report.shared_hits,
                    "shared_misses": report.shared_misses,
                    "shared_publishes": report.shared_publishes,
                    "shared_hit_rate": report.shared_hit_rate,
                    "local_hits": report.pair_bounds_hits,
                    "local_misses": report.pair_bounds_misses,
                    "summary": str(report),
                }
            )
        store_stats = service.bound_store_stats()
    repeated = latencies[1:]
    return {
        "workers": workers,
        "store": store_active,
        "per_round_seconds": latencies,
        "mean_repeated_round_seconds": sum(repeated) / len(repeated),
        "rounds": rounds,
        "results_identical": identical,
        "store_stats": store_stats,
    }


def run_benchmark() -> dict:
    """Measure repeated-batch hit rates and latency, store on vs off."""
    database, batch = _workload()

    serial_engine = QueryEngine(database)
    serial_latencies = []
    baseline = None
    for _ in range(NUM_ROUNDS):
        start = time.perf_counter()
        results = serial_engine.evaluate_many(batch)
        serial_latencies.append(time.perf_counter() - start)
        snapshot = _snapshot(results)
        assert baseline is None or snapshot == baseline
        baseline = snapshot

    curves = {"with_store": [], "without_store": []}
    for workers in WORKER_COUNTS:
        curves["with_store"].append(
            _run_service_rounds(database, batch, baseline, workers, shared_bounds=None)
        )
        curves["without_store"].append(
            _run_service_rounds(database, batch, baseline, workers, shared_bounds=False)
        )

    # the kill-switch fallback: no shared memory at all, results unchanged
    os.environ["REPRO_DISABLE_SHARED_MEMORY"] = "1"
    try:
        fallback = _run_service_rounds(
            database, batch, baseline, workers=2, shared_bounds=None
        )
    finally:
        del os.environ["REPRO_DISABLE_SHARED_MEMORY"]

    reductions = {}
    for on, off in zip(curves["with_store"], curves["without_store"]):
        reductions[str(on["workers"])] = off["mean_repeated_round_seconds"] / max(
            on["mean_repeated_round_seconds"], 1e-12
        )

    return {
        "environment": kernel_environment(),
        "workload": {
            "num_objects": NUM_OBJECTS,
            "distinct_queries": NUM_DISTINCT_QUERIES,
            "repeats_per_batch": REPEATS_PER_BATCH,
            "batch_size": NUM_DISTINCT_QUERIES * REPEATS_PER_BATCH,
            "num_rounds": NUM_ROUNDS,
            "k": K,
            "tau": TAU,
            "max_iterations": MAX_ITERATIONS,
            "seed": SEED,
        },
        "cpu_count": os.cpu_count(),
        "serial": {
            "per_round_seconds": serial_latencies,
            "mean_repeated_round_seconds": sum(serial_latencies[1:])
            / len(serial_latencies[1:]),
        },
        "with_store": curves["with_store"],
        "without_store": curves["without_store"],
        "fallback_no_shared_memory": fallback,
        "repeated_round_latency_reduction": reductions,
        "results_identical": all(
            entry["results_identical"]
            for entry in curves["with_store"] + curves["without_store"] + [fallback]
        ),
        "target_hit_rate": TARGET_HIT_RATE,
        "min_cpus_for_gate": MIN_CPUS_FOR_GATE,
        "note": (
            "hit rate counts shared-store answers among lookups the "
            "worker-local tier missed; the latency-reduction gate applies "
            "on >= 4-CPU machines, where the saved kernel time is not "
            "hidden by worker serialisation"
        ),
    }


def _write_report(report: dict) -> str:
    path = os.environ.get("BENCH_BOUNDSTORE_JSON", "BENCH_boundstore.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    return path


def test_shared_store_eliminates_duplicate_work():
    report = run_benchmark()
    path = _write_report(report)
    print()
    print(f"cpus {report['cpu_count']}  rounds {NUM_ROUNDS}")
    for entry in report["with_store"]:
        rates = [f"{r['shared_hit_rate']:.2f}" for r in entry["rounds"]]
        print(
            f"workers={entry['workers']}  hit rates per round {rates}  "
            f"repeated-round {entry['mean_repeated_round_seconds'] * 1e3:8.1f} ms "
            f"(store) vs "
            f"{report['without_store'][report['with_store'].index(entry)]['mean_repeated_round_seconds'] * 1e3:8.1f} ms"
        )
    print(f"latency reductions {report['repeated_round_latency_reduction']}  -> {path}")
    # determinism is unconditional, for every configuration and the fallback
    assert report["results_identical"]
    # the store must absorb the duplicate work on every repeated round — a
    # cache-content property, independent of scheduling and CPU count.  On
    # platforms where the store cannot exist (no shared memory, or either
    # kill-switch exported), entry["store"] is False and only determinism
    # applies — mirroring the skipif guard of tests/test_boundstore.py.
    store_ran = all(entry["store"] for entry in report["with_store"])
    for entry in report["with_store"]:
        if not entry["store"]:
            continue
        for round_report in entry["rounds"][1:]:
            assert round_report["shared_hit_rate"] >= TARGET_HIT_RATE, (
                f"workers={entry['workers']}: hit rate "
                f"{round_report['shared_hit_rate']:.2f} below {TARGET_HIT_RATE}"
            )
        assert entry["rounds"][0]["shared_publishes"] > 0
    if not store_ran:
        print("shared bounds store unavailable here - hit-rate gate skipped")
    # without the store nothing is shared
    for entry in report["without_store"]:
        assert all(r["shared_hits"] == 0 for r in entry["rounds"])
    # the latency reduction gate mirrors the earlier benchmarks: only on
    # machines with enough CPUs for the effect not to drown in scheduling
    if store_ran and (report["cpu_count"] or 1) >= MIN_CPUS_FOR_GATE:
        reduction = report["repeated_round_latency_reduction"]["4"]
        assert reduction > 1.0, (
            f"shared store made repeated rounds slower at 4 workers "
            f"({reduction:.2f}x)"
        )
    else:
        print(
            f"cpus={report['cpu_count']}, store_ran={store_ran} - skipping "
            "the latency reduction assertion (recorded for information)"
        )


if __name__ == "__main__":
    result = run_benchmark()
    path = _write_report(result)
    print(json.dumps(result, indent=1))
    print(f"wrote {path}")
