"""Gateway throughput, tail latency, and coalescing — measured end to end.

PR 8 puts an asyncio HTTP tier (``repro.gateway``) in front of the
:class:`~repro.engine.QueryService`.  The network tier must not cost the
engine its headline property — bit-identical results at every worker
count — and it should convert concurrency into throughput rather than
queueing.  This benchmark drives a live gateway over a real socket with
the ``repro.testing.load`` closed-loop generator, in three phases:

* **determinism** — a fixed five-kind query set is fetched over HTTP at
  ``workers=1/2/4`` and compared byte-for-byte against the serial
  in-process engine (the gate is unconditional: it holds on any machine);
* **ramp** — a closed-loop concurrency ramp (1..8 clients) over a
  distinct-query stream records throughput and p50/p95/p99 latency per
  step; the "more clients -> more throughput" gate applies only on
  machines with at least :data:`MIN_CPUS_FOR_GATE` CPUs, where the ramp
  is not serialized by the host itself;
* **coalesce** — a duplicate-heavy closed-loop stream (two distinct
  documents, eight clients) measures how many requests were answered from
  a shared in-flight batch (``coalesce_hits`` from ``GET /metrics``).

Measured numbers go to ``BENCH_gateway.json`` (override with the
``BENCH_GATEWAY_JSON`` environment variable).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_gateway.py

or through the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_gateway.py -q -s
"""

from __future__ import annotations

import http.client
import json
import os

from repro.core.kernels import kernel_environment
from repro.datasets import uniform_rectangle_database
from repro.engine import ExecutorConfig, QueryEngine, QueryService
from repro.gateway import GatewayServer, canonical_json, decode_query, encode_result
from repro.testing.load import run_closed_loop, run_ramp

NUM_OBJECTS = 60
SEED = 11
WORKER_COUNTS = (1, 2, 4)
RAMP_CONCURRENCIES = (1, 2, 4, 8)
RAMP_REQUESTS_PER_STEP = 40
COALESCE_CONCURRENCY = 8
COALESCE_REQUESTS = 120
MIN_CPUS_FOR_GATE = 4

#: The determinism query set: one document per supported query kind.
QUERY_DOCS = [
    {"type": "knn", "query": 0, "k": 3, "tau": 0.5, "max_iterations": 4},
    {"type": "rknn", "query": 1, "k": 2, "tau": 0.5, "max_iterations": 3,
     "candidate_indices": list(range(12))},
    {"type": "range", "query": 2, "epsilon": 0.3, "tau": 0.5, "max_depth": 3},
    {"type": "ranking", "query": 3, "max_iterations": 2,
     "candidate_indices": list(range(10))},
    {"type": "inverse_ranking", "target": 4, "reference": 5,
     "max_iterations": 3},
]


def _serial_payloads(database) -> list[bytes]:
    """The reference bytes: serial engine results, gateway-encoded."""
    engine = QueryEngine(database)
    requests = [decode_query(doc, database) for doc in QUERY_DOCS]
    return [
        canonical_json(encode_result(result))
        for result in engine.evaluate_many(requests)
    ]


def _fetch_payloads(host: str, port: int) -> list[bytes]:
    """Fetch every determinism document over one keep-alive connection."""
    connection = http.client.HTTPConnection(host, port, timeout=60)
    payloads = []
    try:
        for doc in QUERY_DOCS:
            body = json.dumps(doc).encode()
            connection.request(
                "POST", "/v1/query", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            raw = response.read()
            assert response.status == 200, (response.status, raw)
            # strip the {"result": ...} envelope back to the payload bytes
            payloads.append(raw[len(b'{"result":'):-1])
    finally:
        connection.close()
    return payloads


def _distinct_factory(index: int):
    """Ramp stream: cycles distinct kNN queries (no coalescing on purpose)."""
    return "/v1/query", {
        "type": "knn", "query": index % 16, "k": 3, "tau": 0.5,
        "max_iterations": 3,
    }


def _duplicate_factory(index: int):
    """Coalesce stream: only two distinct documents across all clients."""
    return "/v1/query", {
        "type": "knn", "query": index % 2, "k": 3, "tau": 0.5,
        "max_iterations": 4,
    }


def run_benchmark() -> dict:
    database = uniform_rectangle_database(
        num_objects=NUM_OBJECTS, max_extent=0.05, seed=SEED
    )
    serial = _serial_payloads(database)

    # -- determinism: HTTP payloads vs serial, at every worker count ----- #
    determinism = {}
    identical = True
    for workers in WORKER_COUNTS:
        with QueryService(database, ExecutorConfig(workers=workers)) as service:
            with GatewayServer(service) as server:
                host, port = server.address
                got = _fetch_payloads(host, port)
                # duplicate round on the same server: byte-stable replies
                again = _fetch_payloads(host, port)
        matches = got == serial and again == serial
        identical &= matches
        determinism[f"workers_{workers}"] = matches

    # -- ramp: throughput and tail latency vs offered concurrency ------- #
    with QueryService(database, ExecutorConfig(workers=2)) as service:
        with GatewayServer(service) as server:
            host, port = server.address
            ramp_reports = run_ramp(
                host, port, _distinct_factory,
                concurrencies=RAMP_CONCURRENCIES,
                requests_per_step=RAMP_REQUESTS_PER_STEP,
                timeout=60.0,
            )
            ramp_ok = all(
                report.transport_errors == 0
                and report.status_counts.get(200, 0) == report.completed
                for report in ramp_reports
            )

    # -- coalesce: duplicate-heavy stream, shared in-flight batches ------ #
    with QueryService(database, ExecutorConfig(workers=2)) as service:
        with GatewayServer(service) as server:
            host, port = server.address
            coalesce_report = run_closed_loop(
                host, port, _duplicate_factory,
                concurrency=COALESCE_CONCURRENCY,
                total_requests=COALESCE_REQUESTS,
                timeout=60.0,
            )
            metrics = server.metrics()
    coalesce_hits = metrics["coalesce_hits"]
    coalesce_rate = coalesce_hits / max(metrics["requests_total"], 1)

    throughputs = [report.throughput_rps for report in ramp_reports]
    return {
        "environment": kernel_environment(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "num_objects": NUM_OBJECTS,
            "seed": SEED,
            "worker_counts": list(WORKER_COUNTS),
            "ramp_concurrencies": list(RAMP_CONCURRENCIES),
            "ramp_requests_per_step": RAMP_REQUESTS_PER_STEP,
            "coalesce_concurrency": COALESCE_CONCURRENCY,
            "coalesce_requests": COALESCE_REQUESTS,
            "query_kinds": [doc["type"] for doc in QUERY_DOCS],
        },
        "determinism": {
            **determinism,
            "identical_to_serial": identical,
        },
        "ramp": [report.as_dict() for report in ramp_reports],
        "ramp_clean": ramp_ok,
        "peak_throughput_rps": max(throughputs),
        "throughput_gain_over_single_client": (
            max(throughputs) / max(throughputs[0], 1e-12)
        ),
        "coalesce": {
            "report": coalesce_report.as_dict(),
            "hits": coalesce_hits,
            "hit_rate": coalesce_rate,
            "engine_batches": metrics["engine"]["batches_total"],
        },
        "min_cpus_for_gate": MIN_CPUS_FOR_GATE,
        "note": (
            "determinism (HTTP payloads byte-identical to the serial engine "
            "at workers=1/2/4) gates unconditionally; the concurrency-to-"
            "throughput gate applies only on >= 4-CPU machines"
        ),
    }


def _write_report(report: dict) -> str:
    path = os.environ.get("BENCH_GATEWAY_JSON", "BENCH_gateway.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    return path


def test_gateway_deterministic_and_scales():
    report = run_benchmark()
    path = _write_report(report)
    print()
    print(f"cpus {report['cpu_count']}")
    for step in report["ramp"]:
        latency = step["latency"]
        print(
            f"concurrency {step['concurrency']:2d}  "
            f"{step['throughput_rps']:7.1f} rps  "
            f"p50 {latency['p50_seconds'] * 1e3:6.1f} ms  "
            f"p99 {latency['p99_seconds'] * 1e3:6.1f} ms"
        )
    print(
        f"coalesce hit rate {report['coalesce']['hit_rate']:.2f}  "
        f"({report['coalesce']['hits']} hits)  -> {path}"
    )
    # determinism is unconditional: the network tier must not cost the
    # engine its bit-identical-at-any-worker-count property
    assert report["determinism"]["identical_to_serial"], report["determinism"]
    assert report["ramp_clean"]
    # throughput gates only where the host has headroom to show them
    if (report["cpu_count"] or 1) >= MIN_CPUS_FOR_GATE:
        assert report["throughput_gain_over_single_client"] > 1.0, (
            "adding closed-loop clients did not raise gateway throughput"
        )
        assert report["coalesce"]["hits"] >= 1, (
            "duplicate-heavy stream produced no coalesced responses"
        )
    else:
        print(
            f"only {report['cpu_count']} CPU(s) - skipping throughput and "
            "coalesce gates (recorded for information)"
        )


if __name__ == "__main__":
    result = run_benchmark()
    path = _write_report(result)
    print(json.dumps(result, indent=1))
    print(f"wrote {path}")
