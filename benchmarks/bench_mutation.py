"""Incremental snapshot advancement vs rebuilding the world per mutation.

Without mutation support (pre-PR-9), absorbing a batch of updates meant
rebuilding everything the old database fed: a new
:class:`~repro.uncertain.UncertainDatabase`, a new engine with cold bounds
caches, a freshly bulk-loaded R-tree, and a new worker pool re-shipping the
whole database.  With :meth:`~repro.engine.QueryService.apply`, the same
batch advances the live service by one snapshot epoch: untouched objects
keep their generations, so their pair-bounds columns stay warm locally and
in the cross-worker shared store, the R-tree is maintained in place, and
only a mutation delta travels to the workers.

This benchmark streams ``NUM_ROUNDS`` mutation batches (each replacing
``MUTATED_PER_ROUND`` of ``NUM_OBJECTS`` objects — well under the 10%%
locality budget) into a service answering a fixed batch of repeated kNN
queries, and records:

* **determinism** — after every mutation batch, the live service's results
  are bit-identical to a freshly built database with the same content
  evaluated serially (asserted unconditionally — the PR-9 acceptance
  criterion: a mutated database is indistinguishable from a fresh one);
* **warm hit rate** — the shared-store hit rate of the first post-mutation
  round.  Mutating <= 10%% of the objects must leave the untouched columns
  warm, so the rate is gated ``>= 0.5`` unconditionally whenever the store
  exists: it measures cache content, not scheduling;
* **incremental vs full re-evaluation speedup** — wall time of
  ``apply + re-evaluate`` on the live service vs tearing down and
  rebuilding database, engine, R-tree and worker pool for the same
  content.  Recorded always; asserted ``> 1`` only on machines with at
  least :data:`MIN_CPUS_FOR_GATE` CPUs, mirroring the earlier benchmarks'
  gating policy.

Measured numbers go to ``BENCH_mutation.json`` (override with the
``BENCH_MUTATION_JSON`` environment variable).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_mutation.py

or through the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_mutation.py -q -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro import Update
from repro.core.kernels import kernel_environment
from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import ExecutorConfig, KNNQuery, QueryEngine, QueryService
from repro.geometry import Rectangle
from repro.index import RTree
from repro.uncertain import BoxUniformObject, UncertainDatabase

NUM_OBJECTS = 150
NUM_DISTINCT_QUERIES = 8
REPEATS_PER_BATCH = 3
NUM_ROUNDS = 3
MUTATED_PER_ROUND = 5  # ~3% of the database, well under the 10% budget
K = 3
TAU = 0.5
MAX_ITERATIONS = 4
SEED = 23
WORKERS = 4
MIN_CPUS_FOR_GATE = 4
TARGET_HIT_RATE = 0.5


def _workload():
    database = uniform_rectangle_database(
        num_objects=NUM_OBJECTS, max_extent=0.05, seed=0
    )
    rng = np.random.default_rng(SEED)
    distinct = [
        random_reference_object(extent=0.05, rng=rng, label=f"query-{i}")
        for i in range(NUM_DISTINCT_QUERIES)
    ]
    batch = [
        KNNQuery(query, k=K, tau=TAU, max_iterations=MAX_ITERATIONS)
        for _ in range(REPEATS_PER_BATCH)
        for query in distinct
    ]
    return database, batch


def _mutation_batch(rng, database):
    """Replace MUTATED_PER_ROUND objects with nearby re-sightings."""
    positions = rng.choice(len(database), size=MUTATED_PER_ROUND, replace=False)
    ops = []
    for position in sorted(int(p) for p in positions):
        center = database[position].mbr.center + rng.normal(0.0, 0.01, size=2)
        obj = BoxUniformObject(
            Rectangle.from_center_extent(np.clip(center, 0.0, 1.0), 0.02),
            label=database[position].label,
        )
        ops.append(Update(position, obj))
    return ops


def _snapshot(results) -> list:
    """Timing-free per-query result snapshot — bit-level comparison material."""
    snap = []
    for result in results:
        snap.append(
            [
                (m.index, m.probability_lower, m.probability_upper, m.decision,
                 m.iterations, m.sequence)
                for bucket in (result.matches, result.undecided, result.rejected)
                for m in bucket
            ]
            + [result.pruned]
        )
    return snap


def _full_rebuild_round(snapshot_db, batch):
    """The pre-mutation-support alternative: rebuild the world, then query."""
    start = time.perf_counter()
    fresh = UncertainDatabase(list(snapshot_db.objects))
    engine = QueryEngine(fresh, rtree=RTree(fresh.mbrs()))
    with QueryService(engine, ExecutorConfig(workers=WORKERS)) as service:
        results = service.evaluate_many(batch)
    return time.perf_counter() - start, _snapshot(results)


def run_benchmark() -> dict:
    """Stream mutation batches; measure incremental vs rebuild, warm hit rate."""
    database, batch = _workload()
    rng = np.random.default_rng(SEED + 1)

    rounds, identical = [], True
    config = ExecutorConfig(workers=WORKERS)
    engine = QueryEngine(database, rtree=RTree(database.mbrs()))
    with QueryService(engine, config) as service:
        store_active = service.shared_bounds
        service.evaluate_many(batch)  # warm every cache tier at epoch 0
        for _ in range(NUM_ROUNDS):
            ops = _mutation_batch(rng, service.engine.database)

            start = time.perf_counter()
            epoch = service.apply(ops)
            apply_seconds = time.perf_counter() - start

            start = time.perf_counter()
            results = service.evaluate_many(batch)
            reeval_seconds = time.perf_counter() - start
            report = service.last_batch_report
            incremental = _snapshot(results)

            # the alternative: rebuild database/engine/R-tree/pool from scratch
            rebuild_seconds, rebuilt = _full_rebuild_round(
                service.engine.database, batch
            )
            # and the unconditional ground truth: a fresh database, serially
            fresh = UncertainDatabase(list(service.engine.database.objects))
            serial = _snapshot(QueryEngine(fresh).evaluate_many(batch))

            identical &= incremental == serial and rebuilt == serial
            rounds.append(
                {
                    "epoch": epoch,
                    "mutated": len(ops),
                    "apply_seconds": apply_seconds,
                    "reeval_seconds": reeval_seconds,
                    "incremental_seconds": apply_seconds + reeval_seconds,
                    "rebuild_seconds": rebuild_seconds,
                    "speedup": rebuild_seconds
                    / max(apply_seconds + reeval_seconds, 1e-12),
                    "shared_hits": report.shared_hits,
                    "shared_misses": report.shared_misses,
                    "shared_hit_rate": report.shared_hit_rate,
                    "results_identical": incremental == serial,
                }
            )

    mean_speedup = sum(r["speedup"] for r in rounds) / len(rounds)
    return {
        "environment": kernel_environment(),
        "workload": {
            "num_objects": NUM_OBJECTS,
            "distinct_queries": NUM_DISTINCT_QUERIES,
            "repeats_per_batch": REPEATS_PER_BATCH,
            "batch_size": NUM_DISTINCT_QUERIES * REPEATS_PER_BATCH,
            "num_rounds": NUM_ROUNDS,
            "mutated_per_round": MUTATED_PER_ROUND,
            "k": K,
            "tau": TAU,
            "max_iterations": MAX_ITERATIONS,
            "seed": SEED,
            "workers": WORKERS,
        },
        "cpu_count": os.cpu_count(),
        "store_active": store_active,
        "rounds": rounds,
        "mean_incremental_seconds": sum(r["incremental_seconds"] for r in rounds)
        / len(rounds),
        "mean_rebuild_seconds": sum(r["rebuild_seconds"] for r in rounds)
        / len(rounds),
        "mean_speedup": mean_speedup,
        "results_identical": identical,
        "target_hit_rate": TARGET_HIT_RATE,
        "min_cpus_for_gate": MIN_CPUS_FOR_GATE,
        "note": (
            "speedup compares apply+re-evaluate on the live service against "
            "rebuilding database, engine, R-tree and worker pool for the "
            "same content; the hit-rate gate is unconditional (cache "
            "content, not scheduling), the speedup gate applies on "
            ">= 4-CPU machines"
        ),
    }


def _write_report(report: dict) -> str:
    path = os.environ.get("BENCH_MUTATION_JSON", "BENCH_mutation.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    return path


def test_incremental_mutation_beats_rebuilding():
    report = run_benchmark()
    path = _write_report(report)
    print()
    print(f"cpus {report['cpu_count']}  rounds {NUM_ROUNDS}")
    for entry in report["rounds"]:
        print(
            f"epoch {entry['epoch']}  apply {entry['apply_seconds'] * 1e3:6.1f} ms  "
            f"re-eval {entry['reeval_seconds'] * 1e3:7.1f} ms  "
            f"rebuild {entry['rebuild_seconds'] * 1e3:7.1f} ms  "
            f"speedup {entry['speedup']:5.2f}x  "
            f"hit rate {entry['shared_hit_rate']:.2f}"
        )
    print(f"mean speedup {report['mean_speedup']:.2f}x  -> {path}")
    # determinism is unconditional: mutated == freshly built, every round
    assert report["results_identical"]
    # mutating <= 10% of the objects must leave the untouched columns warm
    # in the shared store — unconditional whenever the store can exist
    if report["store_active"]:
        for entry in report["rounds"]:
            assert entry["shared_hit_rate"] >= TARGET_HIT_RATE, (
                f"epoch {entry['epoch']}: post-mutation hit rate "
                f"{entry['shared_hit_rate']:.2f} below {TARGET_HIT_RATE}"
            )
    else:
        print("shared bounds store unavailable here - hit-rate gate skipped")
    # the speedup gate mirrors the earlier benchmarks: only where worker
    # startup and kernel time are not drowned by scheduling noise
    if (report["cpu_count"] or 1) >= MIN_CPUS_FOR_GATE:
        assert report["mean_speedup"] > 1.0, (
            f"incremental advancement slower than rebuilding "
            f"({report['mean_speedup']:.2f}x)"
        )
    else:
        print(
            f"cpus={report['cpu_count']} - skipping the speedup assertion "
            "(recorded for information)"
        )


if __name__ == "__main__":
    result = run_benchmark()
    path = _write_report(result)
    print(json.dumps(result, indent=1))
    print(f"wrote {path}")
