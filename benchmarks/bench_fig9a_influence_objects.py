"""Figure 9(a) — runtime per iteration vs number of influence objects.

Paper: the runtime of IDCA is governed by the number of influence objects,
which grows with the distance between the query and the target object; the
per-iteration runtime scales gracefully with that number.
"""

from collections import defaultdict

from repro.experiments import figure9a_influence_objects


def test_fig9a_influence_objects(benchmark, report):
    table = report(
        benchmark,
        figure9a_influence_objects,
        target_ranks=(1, 5, 10, 25, 50),
        num_objects=5_000,
        iterations=3,
        seed=0,
    )
    per_rank = defaultdict(list)
    for row in table:
        per_rank[row["target_rank"]].append(row)
    # more distant targets (larger rank) have at least as many influence objects
    influence_by_rank = [rows[0]["num_influence"] for _, rows in sorted(per_rank.items())]
    assert influence_by_rank == sorted(influence_by_rank)
    # cumulative runtime grows with the iteration for every rank
    for rows in per_rank.values():
        times = [r["cumulative_seconds"] for r in rows]
        assert times == sorted(times)
