"""Figure 5 — runtime of the Monte-Carlo comparison partner vs sample size.

Paper: 10,000 synthetic objects, samples up to 1,500, runtimes of hundreds of
seconds per query.  Scaled-down here; the property to reproduce is the steep
(super-linear) growth of the MC runtime with the number of samples per object.
"""

from repro.experiments import figure5_mc_runtime


def test_fig5_mc_runtime(benchmark, report):
    table = report(
        benchmark,
        figure5_mc_runtime,
        num_objects=60,
        sample_sizes=(20, 40, 80, 160),
        num_queries=1,
        seed=0,
    )
    runtimes = table.column("runtime_per_query_seconds")
    # monotone growth, and clearly super-linear from the first to the last point
    assert all(b > a for a, b in zip(runtimes, runtimes[1:]))
    assert runtimes[-1] > 4.0 * runtimes[0]
