"""Figure 9(b) — runtime per iteration vs database size.

Paper: database sizes from 20,000 to 100,000 objects with maximum extent
0.002.  The runtime of IDCA is driven by the number of influence objects, not
the raw database size, so IDCA scales well as the database grows.
"""

from collections import defaultdict

from repro.experiments import figure9b_database_size


def test_fig9b_database_size(benchmark, report):
    table = report(
        benchmark,
        figure9b_database_size,
        database_sizes=(2_000, 4_000, 6_000, 8_000, 10_000),
        iterations=3,
        seed=0,
    )
    per_size = defaultdict(list)
    for row in table:
        per_size[row["database_size"]].append(row)
    # cumulative runtime grows per iteration for every database size
    for rows in per_size.values():
        times = [r["cumulative_seconds"] for r in rows]
        assert times == sorted(times)
    # denser databases leave more influence objects (the quantity that drives
    # the refinement cost), yet even the largest configuration stays tractable:
    # the whole refinement finishes in well under a second per query, mirroring
    # the paper's conclusion that IDCA scales to large databases
    sizes = sorted(per_size)
    influence = [per_size[size][0]["num_influence"] for size in sizes]
    assert influence[-1] >= influence[0]
    total_large = per_size[sizes[-1]][-1]["cumulative_seconds"]
    assert total_large < 2.0
