"""Engine batch mode vs seed-style independent query calls.

A seeded 20-query kNN stream (drawn with repetition from 8 distinct query
objects — production query streams repeat) is evaluated twice over the same
seeded dataset:

* **independent** — 20 separate ``probabilistic_knn_threshold`` calls.  Each
  call builds a fresh engine and refinement context, which is exactly the
  seed behaviour of one isolated filter-and-refine loop per query.
* **batch** — one ``QueryEngine.evaluate_many`` call.  The shared refinement
  context reuses decomposition trees and memoised per-pair domination bounds
  across the whole stream, so repeated queries skip their pdom kernels
  entirely and distinct queries still share database-object decompositions.

Both modes must return identical results; the batch must take less total
wall-clock time.  The measured numbers are written to ``BENCH_engine.json``
(override the location with the ``BENCH_ENGINE_JSON`` environment variable).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_batch.py

or through the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_batch.py -q -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.kernels import kernel_environment
from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import KNNQuery, QueryEngine
from repro.experiments import run_query_batch
from repro.queries import probabilistic_knn_threshold

NUM_OBJECTS = 150
NUM_DISTINCT_QUERIES = 8
STREAM_LENGTH = 20
K = 3
TAU = 0.5
MAX_ITERATIONS = 4
SEED = 7


def _workload():
    database = uniform_rectangle_database(
        num_objects=NUM_OBJECTS, max_extent=0.05, seed=0
    )
    rng = np.random.default_rng(SEED)
    distinct = [
        random_reference_object(extent=0.05, rng=rng, label=f"query-{i}")
        for i in range(NUM_DISTINCT_QUERIES)
    ]
    stream = [distinct[i] for i in rng.integers(0, NUM_DISTINCT_QUERIES, size=STREAM_LENGTH)]
    return database, stream


def run_benchmark() -> dict:
    """Time both modes on the seeded stream and return the comparison."""
    database, stream = _workload()
    requests = [
        KNNQuery(query, k=K, tau=TAU, max_iterations=MAX_ITERATIONS) for query in stream
    ]

    start = time.perf_counter()
    independent = [
        probabilistic_knn_threshold(
            database, query, k=K, tau=TAU, max_iterations=MAX_ITERATIONS
        )
        for query in stream
    ]
    independent_seconds = time.perf_counter() - start

    engine = QueryEngine(database)
    start = time.perf_counter()
    per_query_table, batch = run_query_batch(
        engine,
        requests,
        name="engine_batch",
        description="20-query kNN stream through QueryEngine.evaluate_many",
    )
    batch_seconds = time.perf_counter() - start

    identical = all(
        a.result_indices() == b.result_indices()
        and [m.index for m in a.undecided] == [m.index for m in b.undecided]
        and [m.index for m in a.rejected] == [m.index for m in b.rejected]
        for a, b in zip(independent, batch)
    )
    return {
        "environment": kernel_environment(),
        "workload": {
            "num_objects": NUM_OBJECTS,
            "stream_length": STREAM_LENGTH,
            "distinct_queries": NUM_DISTINCT_QUERIES,
            "k": K,
            "tau": TAU,
            "max_iterations": MAX_ITERATIONS,
            "seed": SEED,
        },
        "independent_seconds": independent_seconds,
        "batch_seconds": batch_seconds,
        "speedup": independent_seconds / max(batch_seconds, 1e-12),
        "results_identical": identical,
        "context_stats": engine.context.stats(),
        "per_query_seconds": per_query_table.column("seconds"),
    }


def _write_report(report: dict) -> str:
    path = os.environ.get("BENCH_ENGINE_JSON", "BENCH_engine.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    return path


def test_engine_batch_beats_independent_calls():
    report = run_benchmark()
    path = _write_report(report)
    print()
    print(
        f"independent {report['independent_seconds']:.2f}s  "
        f"batch {report['batch_seconds']:.2f}s  "
        f"speedup {report['speedup']:.2f}x  -> {path}"
    )
    assert report["results_identical"]
    assert report["batch_seconds"] < report["independent_seconds"]


if __name__ == "__main__":
    result = run_benchmark()
    path = _write_report(result)
    print(json.dumps(result, indent=1))
    print(f"wrote {path}")
