"""Ablation — possible-world semantics vs the expected-distance shortcut.

The paper motivates its approach by pointing out that expected-distance kNN
"does not adhere to the possible world semantics and may thus produce very
inaccurate results".  This ablation measures, on random workloads with large
object extents, how often the expected-distance top-k differs from the
probabilistic threshold kNN answer.
"""

from repro.experiments import ablation_expected_distance_agreement


def test_ablation_expected_distance_agreement(benchmark, report):
    table = report(
        benchmark,
        ablation_expected_distance_agreement,
        num_objects=150,
        max_extent=0.08,
        k=5,
        tau=0.5,
        num_queries=3,
        max_iterations=4,
        seed=0,
    )
    differences = table.column("symmetric_difference")
    # with substantial object uncertainty the two semantics disagree for at
    # least one query of the workload
    assert sum(differences) >= 1
