"""Ablation — k-truncated UGF vs full expansion (Section VI optimisation).

For kNN / RkNN predicates only the probabilities ``P(DomCount < k)`` matter,
so coefficients that cannot influence counts below ``k`` can be merged.  The
paper argues this reduces the complexity from ``O(|Cand|^3)`` to
``O(k^2 |Cand|)``; this ablation verifies that the truncated expansion is
substantially faster for large candidate sets while producing identical
bounds below the cap.
"""

from repro.experiments import ablation_ugf_truncation


def test_ablation_ugf_truncation(benchmark, report):
    table = report(
        benchmark,
        ablation_ugf_truncation,
        num_variables=(50, 100, 200, 400),
        k=5,
        trials=3,
        seed=0,
    )
    for row in table:
        assert row["bounds_agree"] is True
    # the speedup grows with the number of variables
    speedups = [row["full_seconds"] / max(row["truncated_seconds"], 1e-9) for row in table]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 3.0
