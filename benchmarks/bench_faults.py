"""Cost of fault tolerance: kill-to-respawn latency and retry overhead.

The supervised service re-drives a crashed worker's chunk on a respawned
lane (see ``engine/executor.py``); determinism plus the still-warm shared
bounds store make the retry bit-identical to a clean run.  This benchmark
measures what that recovery *costs*.  The same seeded kNN batch stream
runs twice through a :class:`~repro.engine.QueryService`:

* **clean** — no faults; the baseline per-batch latency;
* **faulted** — a :class:`~repro.testing.faults.FaultPlan` SIGKILLs one
  worker at the start of the stream's middle batch, so exactly one batch
  absorbs a crash, a respawn and a re-driven chunk.

Headline numbers: ``kill_to_respawn_seconds`` (the faulted batch's latency
minus the clean latency of the same batch — crash detection + worker
respawn + chunk re-execution) and ``retry_overhead_ratio`` (faulted stream
total over clean stream total — the whole-stream price of one crash).

Determinism is asserted unconditionally: both streams must be bit-identical
to the serial reference, crash or no crash, and the faulted run must report
at least one respawn and one retried chunk.  The overhead gate (recovery
costs less than :data:`MAX_RETRY_OVERHEAD` of the clean stream) applies
only on machines with at least :data:`MIN_CPUS_FOR_GATE` CPUs, where
scheduling noise cannot dominate the measurement.  Measured numbers go to
``BENCH_faults.json`` (override with the ``BENCH_FAULTS_JSON`` environment
variable).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_faults.py

or through the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -q -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.kernels import kernel_environment
from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import ExecutorConfig, KNNQuery, QueryEngine, QueryService
from repro.testing.faults import ANY_LANE, FaultPlan, inject_faults

NUM_OBJECTS = 150
NUM_DISTINCT_QUERIES = 8
NUM_BATCHES = 6
BATCH_SIZE = 4
K = 3
TAU = 0.5
MAX_ITERATIONS = 4
SEED = 7
WORKERS = 2
#: The batch whose first chunk start triggers the SIGKILL (0-based) — mid
#: stream, so the pool is warm when the crash lands.
FAULT_BATCH = NUM_BATCHES // 2
MIN_CPUS_FOR_GATE = 4
#: Gate: the faulted stream may cost at most this multiple of the clean one.
MAX_RETRY_OVERHEAD = 3.0


def _workload():
    database = uniform_rectangle_database(
        num_objects=NUM_OBJECTS, max_extent=0.05, seed=0
    )
    rng = np.random.default_rng(SEED)
    distinct = [
        random_reference_object(extent=0.05, rng=rng, label=f"query-{i}")
        for i in range(NUM_DISTINCT_QUERIES)
    ]
    stream = [
        distinct[i]
        for i in rng.integers(0, NUM_DISTINCT_QUERIES, size=NUM_BATCHES * BATCH_SIZE)
    ]
    requests = [
        KNNQuery(query, k=K, tau=TAU, max_iterations=MAX_ITERATIONS) for query in stream
    ]
    batches = [
        requests[i : i + BATCH_SIZE] for i in range(0, len(requests), BATCH_SIZE)
    ]
    return database, batches


def _snapshot(results) -> list:
    """Full per-query result snapshot — bit-level comparison material."""
    snap = []
    for result in results:
        snap.append(
            [
                (m.index, m.probability_lower, m.probability_upper, m.decision,
                 m.iterations, m.sequence)
                for bucket in (result.matches, result.undecided, result.rejected)
                for m in bucket
            ]
            + [result.pruned]
        )
    return snap


def _run_stream(database, batches, baseline):
    """One service, the whole stream; returns latencies and fault counters."""
    config = ExecutorConfig(mode="process", workers=WORKERS, chunking="affinity")
    latencies = []
    identical = True
    respawns = 0
    retries = 0
    with QueryService(QueryEngine(database), config) as service:
        for index, batch in enumerate(batches):
            start = time.perf_counter()
            results = service.evaluate_many(batch)
            latencies.append(time.perf_counter() - start)
            identical &= _snapshot(results) == baseline[index]
            report = service.last_batch_report
            respawns += report.worker_respawns
            retries += report.chunk_retries
    return latencies, identical, respawns, retries


def run_benchmark() -> dict:
    """Measure recovery latency and retry overhead of one mid-stream crash."""
    database, batches = _workload()

    serial_engine = QueryEngine(database)
    baseline = [_snapshot(serial_engine.evaluate_many(batch)) for batch in batches]

    clean_latencies, clean_identical, clean_respawns, _ = _run_stream(
        database, batches, baseline
    )

    # SIGKILL one worker at the first chunk of the middle batch: with
    # affinity chunking each batch dispatches one chunk per distinct query,
    # so FAULT_BATCH * chunks-per-batch is not knowable statically — count
    # chunk *starts in one worker* instead: the kill fires on that worker's
    # first chunk of the fault batch, approximated by the number of batches
    # seen so far (each batch starts at least one chunk per busy worker).
    plan = FaultPlan(
        kill_lane=ANY_LANE, kill_after_chunks=FAULT_BATCH, kill_once=True
    )
    with inject_faults(plan):
        faulted_latencies, faulted_identical, respawns, retries = _run_stream(
            database, batches, baseline
        )

    clean_total = sum(clean_latencies)
    faulted_total = sum(faulted_latencies)
    # the batch that absorbed the crash, by excess latency over its clean run
    excess = [f - c for f, c in zip(faulted_latencies, clean_latencies)]
    crash_batch = max(range(len(excess)), key=excess.__getitem__)
    return {
        "environment": kernel_environment(),
        "workload": {
            "num_objects": NUM_OBJECTS,
            "num_batches": NUM_BATCHES,
            "batch_size": BATCH_SIZE,
            "distinct_queries": NUM_DISTINCT_QUERIES,
            "k": K,
            "tau": TAU,
            "max_iterations": MAX_ITERATIONS,
            "seed": SEED,
            "workers": WORKERS,
            "fault_batch_trigger": FAULT_BATCH,
        },
        "cpu_count": os.cpu_count(),
        "clean": {
            "per_batch_seconds": clean_latencies,
            "total_seconds": clean_total,
            "results_identical": clean_identical,
            "worker_respawns": clean_respawns,
        },
        "faulted": {
            "per_batch_seconds": faulted_latencies,
            "total_seconds": faulted_total,
            "results_identical": faulted_identical,
            "worker_respawns": respawns,
            "chunk_retries": retries,
            "crash_batch": crash_batch,
        },
        "kill_to_respawn_seconds": max(0.0, excess[crash_batch]),
        "retry_overhead_ratio": faulted_total / max(clean_total, 1e-12),
        "results_identical": clean_identical and faulted_identical,
        "min_cpus_for_gate": MIN_CPUS_FOR_GATE,
        "max_retry_overhead": MAX_RETRY_OVERHEAD,
        "note": (
            "kill_to_respawn_seconds = crash batch latency minus its clean "
            "latency: crash detection + lane respawn + chunk re-execution. "
            "The overhead gate applies on >= 4-CPU machines only"
        ),
    }


def _write_report(report: dict) -> str:
    path = os.environ.get("BENCH_FAULTS_JSON", "BENCH_faults.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    return path


def test_crash_recovery_is_bit_identical_and_bounded():
    report = run_benchmark()
    path = _write_report(report)
    print()
    print(f"cpus {report['cpu_count']}  workers {WORKERS}")
    print(
        f"clean   total {report['clean']['total_seconds'] * 1e3:8.1f} ms  "
        f"respawns {report['clean']['worker_respawns']}"
    )
    print(
        f"faulted total {report['faulted']['total_seconds'] * 1e3:8.1f} ms  "
        f"respawns {report['faulted']['worker_respawns']}  "
        f"retries {report['faulted']['chunk_retries']}"
    )
    print(
        f"kill-to-respawn {report['kill_to_respawn_seconds'] * 1e3:.1f} ms  "
        f"retry overhead {report['retry_overhead_ratio']:.2f}x  -> {path}"
    )
    # determinism is unconditional: a crash must never change results
    assert report["results_identical"]
    # the fault actually fired and was recovered from
    assert report["clean"]["worker_respawns"] == 0
    assert report["faulted"]["worker_respawns"] >= 1
    assert report["faulted"]["chunk_retries"] >= 1
    # the overhead gate mirrors the other benchmarks' CPU gating
    if (report["cpu_count"] or 1) >= MIN_CPUS_FOR_GATE:
        assert report["retry_overhead_ratio"] < MAX_RETRY_OVERHEAD, (
            "one crash cost more than the whole clean stream x"
            f"{MAX_RETRY_OVERHEAD}"
        )
    else:
        print(
            f"only {report['cpu_count']} CPU(s) - skipping the retry "
            "overhead assertion (recorded for information)"
        )


if __name__ == "__main__":
    result = run_benchmark()
    path = _write_report(result)
    print(json.dumps(result, indent=1))
    print(f"wrote {path}")
